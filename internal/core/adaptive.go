package core

import (
	"repro/internal/comm"
)

// The paper observes that repositioning costs 1–2 ms even when the input
// distribution is already ideal, and notes: "Our current implementations
// do not check whether the initial distribution is close to an ideal
// distribution and always reposition." ReposAdaptive supplies that check.
//
// The decision is made from the deterministic holder-growth replay of the
// halving pattern (the same bookkeeping every processor already performs):
// the spec's growth efficiency — how close the holder count comes to
// doubling every iteration — is compared between the initial distribution
// and the algorithm's ideal target. Every processor computes the identical
// decision from the spec alone, so no extra communication is needed.
type reposAdaptive struct {
	inner Algorithm
	// margin is the efficiency improvement (absolute, 0..1) that must be
	// exceeded before the permutation is considered worthwhile.
	margin float64
}

// ReposAdaptive returns a repositioning algorithm that first checks
// whether the initial distribution is already close to ideal and skips
// the permutation unless repositioning would improve the halving growth
// efficiency by strictly more than margin (e.g. 0.1); a gain exactly
// equal to the margin still skips.
func ReposAdaptive(inner Algorithm, margin float64) Algorithm {
	return reposAdaptive{inner: inner, margin: margin}
}

func (a reposAdaptive) Name() string { return "ReposAdaptive_" + a.inner.Name() }

// GrowthEfficiency is the exported form of the ReposAdaptive decision
// metric: how close the spec's halving replay comes to doubling the
// holder count every iteration (1.0 = perfect doubling until saturation).
// The planner's analytic tier ranks distributions with it.
func GrowthEfficiency(spec Spec) float64 { return growthEfficiency(spec) }

// growthEfficiency replays the snake-order halving pattern over the given
// source positions and scores how close the holder counts come to doubling
// each iteration (1.0 = perfect doubling until saturation). It is the
// decision metric of ReposAdaptive; internal/analysis exposes richer
// variants for offline study.
func growthEfficiency(spec Spec) float64 {
	p := spec.P()
	s := spec.S()
	if s >= p {
		return 1
	}
	holds := spec.holderFlags()
	// Replay in rank space (row-major); the indexing detail matters less
	// for the decision than the pairing structure, and using one fixed
	// order keeps the decision identical for every inner algorithm.
	type seg struct{ lo, n int }
	segs := []seg{{0, p}}
	cur := s
	achieved, ideal := 0.0, 0.0
	for {
		split := false
		for _, g := range segs {
			if g.n > 1 {
				split = true
			}
		}
		if !split {
			break
		}
		var next []seg
		for _, g := range segs {
			if g.n <= 1 {
				continue
			}
			h := (g.n + 1) / 2
			for i := 0; i < g.n-h; i++ {
				a, b := g.lo+i, g.lo+i+h
				m := holds[a] || holds[b]
				holds[a], holds[b] = m, m
			}
			if g.n%2 == 1 {
				u, tgt := g.lo+h-1, g.lo+g.n-1
				if holds[u] {
					holds[tgt] = true
				}
			}
			next = append(next, seg{g.lo, h}, seg{g.lo + h, g.n - h})
		}
		segs = next
		count := 0
		for _, hl := range holds {
			if hl {
				count++
			}
		}
		want := cur * 2
		if want > p {
			want = p
		}
		if cur < p {
			ideal += float64(want - cur)
			if count > cur {
				achieved += float64(count - cur)
			}
		}
		cur = count
	}
	if ideal == 0 {
		return 1
	}
	e := achieved / ideal
	if e > 1 {
		e = 1
	}
	return e
}

func (a reposAdaptive) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	gen := IdealFor(a.inner, spec.Rows, spec.Cols)
	ideal, err := gen.Sources(spec.Rows, spec.Cols, spec.S())
	if err != nil {
		panic(err)
	}
	idealSpec := Spec{Rows: spec.Rows, Cols: spec.Cols, Sources: ideal, Indexing: spec.Indexing}
	gain := growthEfficiency(idealSpec) - growthEfficiency(spec)
	if gain <= a.margin {
		// Close enough to ideal: skip the permutation. The margin is the
		// improvement that must be exceeded, so gain == margin skips too.
		return a.inner.Run(c, spec, mine)
	}
	c.Barrier()
	targets := repositionPermutation(spec, ideal)
	bundle := applyReposition(c, spec, targets, mine)
	inner := Spec{Rows: spec.Rows, Cols: spec.Cols, Sources: targets, Indexing: spec.Indexing}
	return a.inner.Run(c, inner, bundle)
}
