package core

import (
	"repro/internal/collective"
	"repro/internal/comm"
)

// twoStep is Algorithm 2-Step: an s-to-one gather at processor 0 followed
// by a one-to-all broadcast of the combined bundle along the binomial
// halving tree. The gather concentrates all traffic at P0 — the congestion
// hot spot the paper blames for its poor Paragon performance.
type twoStep struct{}

// TwoStep returns Algorithm 2-Step (the NX baseline; the paper's
// MPI_AllGather is the same pattern run under the MPI cost profile).
func TwoStep() Algorithm { return twoStep{} }

func (twoStep) Name() string { return "2-Step" }

func (twoStep) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	comm.MarkIter(c, 0)
	comm.MarkPhase(c, "gather")
	gathered := collective.Gather(c, 0, spec.Sources, mine)
	comm.MarkIter(c, 1)
	comm.MarkPhase(c, "broadcast")
	return collective.Bcast(c, 0, gathered)
}

// persAlltoAll is Algorithm PersAlltoAll: every source delivers its
// message individually to every processor through p−1 pairwise
// permutations. No combining, no waiting on intermediate hops — but s·(p−1)
// messages, which saturates the Paragon's mesh and wins on the T3D's
// bandwidth-rich torus.
type persAlltoAll struct{}

// PersAlltoAll returns Algorithm PersAlltoAll (the paper's MPI_Alltoall is
// the same pattern run under the MPI cost profile).
func PersAlltoAll() Algorithm { return persAlltoAll{} }

func (persAlltoAll) Name() string { return "PersAlltoAll" }

func (persAlltoAll) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	return collective.AlltoallPersonalized(c, spec.Sources, mine)
}

// ringAllGather broadcasts by a ring all-gather over all p processors
// (p−1 neighbour steps, empty bundles for non-sources). This is how a
// modern MPI library would serve s-to-p broadcasting through
// MPI_Allgatherv; it is included as an ablation beyond the paper's
// algorithm set.
type ringAllGather struct{}

// RingAllGather returns the ring all-gather ablation algorithm.
func RingAllGather() Algorithm { return ringAllGather{} }

func (ringAllGather) Name() string { return "Ring_AllGather" }

func (ringAllGather) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	return collective.AllgatherRing(c, mine)
}

// rdAllGather broadcasts with the recursive-doubling all-gather, the
// algorithm inside MPICH's MPI_Allgatherv. The paper's measured T3D
// MPI_AllGather curves (distribution sensitivity with equal best,
// more-sources-faster at fixed volume, convergence toward Alltoall as
// s→p) match this collective rather than the gather+broadcast the paper's
// text describes; the T3D experiments run both and EXPERIMENTS.md
// discusses the discrepancy.
type rdAllGather struct{}

// RDAllGather returns the recursive-doubling all-gather algorithm.
func RDAllGather() Algorithm { return rdAllGather{} }

func (rdAllGather) Name() string { return "RD_AllGather" }

func (rdAllGather) Run(c comm.Comm, spec Spec, mine comm.Message) comm.Message {
	if err := spec.Validate(c.Size()); err != nil {
		panic(err)
	}
	c.Barrier()
	return collective.AllgatherRecDoubling(c, spec.Sources, mine)
}
