#!/bin/sh
# daemon_smoke.sh — end-to-end smoke test of the stpbcastd service:
# build the daemon and client, start the daemon on a random port, run
# one broadcast per engine through stpctl, scrape /metrics, and shut
# down cleanly. Run via `make daemon-smoke`; CI runs the same target.
set -eu

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    # The happy path shuts the daemon down via stpctl; only kill it if
    # something failed before the drain.
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/stpbcastd" ./cmd/stpbcastd
go build -o "$workdir/stpctl" ./cmd/stpctl

echo "== start daemon on a random port"
"$workdir/stpbcastd" -addr 127.0.0.1:0 >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

# The daemon prints "stpbcastd listening on http://ADDR" once bound.
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's|^stpbcastd listening on http://||p' "$workdir/daemon.log")"
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "daemon died:"; cat "$workdir/daemon.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "daemon never reported its address"; cat "$workdir/daemon.log"; exit 1; }
echo "   $addr"

# -addr is a per-subcommand flag; the env default is simpler here and
# exercises that path too.
ctl() { STPBCASTD_ADDR="$addr" "$workdir/stpctl" "$@"; }

echo "== ping"
ctl ping

echo "== one broadcast per engine"
ctl broadcast -engine sim -rows 4 -cols 4 -alg Br_xy_source -s 4 -bytes 4096
ctl broadcast -engine live -rows 3 -cols 3 -alg Br_Lin -s 3 -bytes 256
ctl broadcast -engine tcp -rows 2 -cols 2 -alg Br_Lin -s 2 -bytes 128 -trace

echo "== a non-broadcast collective over a warm session"
ctl broadcast -engine live -rows 3 -cols 3 -collective AllReduce -bytes 256 \
    | grep -q 'collective=AllReduce' || { echo "allreduce run missing its collective echo"; exit 1; }
# -dist on a sourceless collective is a usage error, caught client-side.
if ctl broadcast -engine sim -rows 4 -cols 4 -collective AllToAll -dist E 2>/dev/null; then
    echo "stpctl accepted -dist for AllToAll"; exit 1
fi

echo "== sessions and stats"
ctl sessions
ctl stats

echo "== metrics reflect the four runs"
ctl metrics > "$workdir/metrics.txt"
grep -q '^stpbcastd_requests_total 4$' "$workdir/metrics.txt"
grep -q '^stpbcastd_completed_total 4$' "$workdir/metrics.txt"
grep -q '^stpbcastd_failed_total 0$' "$workdir/metrics.txt"
grep -q '^stpbcastd_sessions 3$' "$workdir/metrics.txt"

echo "== graceful shutdown"
ctl shutdown
# The daemon exits on its own after the drain.
for _ in $(seq 1 50); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    echo "daemon still running after shutdown"; cat "$workdir/daemon.log"; exit 1
fi
daemon_pid=""
grep -q 'drained via /v1/shutdown' "$workdir/daemon.log"

echo "daemon smoke: OK"
