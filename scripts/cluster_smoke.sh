#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the multi-process cluster
# runtime: build stpworker, run a p=64 sparse Br_Lin broadcast with the
# coordinator spawning 4 worker OS processes, and require that no send
# crossed a link outside the partitioned route plan (zero lazy dials;
# -fail-on-lazy turns that invariant into the exit status). A second
# leg drives the adopt path: the coordinator waits on a fixed control
# port for externally started `stpworker -coord` processes.
# Run via `make cluster-smoke`; CI runs the same target.
set -eu

workdir="$(mktemp -d)"
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/stpworker" ./cmd/stpworker

echo "== spawn mode: coordinator + 4 worker processes, p=64 sparse"
"$workdir/stpworker" -workers 4 -rows 8 -cols 8 -alg Br_Lin -dist E -s 4 \
    -bytes 1024 -sparse -runs 3 -fail-on-lazy | tee "$workdir/spawn.log"
grep -q "across 4 workers" "$workdir/spawn.log" || {
    echo "coordinator did not report 4 workers"; exit 1; }
grep -q "0 lazy dials" "$workdir/spawn.log" || {
    echo "lazy-dial count missing from summary"; exit 1; }

echo "== adopt mode: externally started workers dial a fixed control port"
port=$((20000 + $$ % 10000))
"$workdir/stpworker" -workers 2 -adopt -listen "127.0.0.1:$port" \
    -rows 4 -cols 8 -alg Br_Lin -dist E -s 2 -bytes 512 -sparse -runs 1 \
    -fail-on-lazy >"$workdir/adopt.log" 2>&1 &
coord_pid=$!
pids="$coord_pid"
# Give the coordinator a beat to bind before the workers dial in; they
# retry nothing — the control dial either lands or the smoke fails.
sleep 0.5
"$workdir/stpworker" -coord "127.0.0.1:$port" &
pids="$pids $!"
"$workdir/stpworker" -coord "127.0.0.1:$port" &
pids="$pids $!"
wait "$coord_pid" || { echo "adopt-mode coordinator failed:"; cat "$workdir/adopt.log"; exit 1; }
cat "$workdir/adopt.log"
grep -q "0 lazy dials" "$workdir/adopt.log" || {
    echo "adopt-mode lazy-dial count missing"; exit 1; }

echo "== cluster smoke OK"
