package stpbcast

// This file is the deprecated pre-Run API, kept whole so configurations
// written against the original one-shot entrypoints keep compiling and
// return identical results. Every function here is a thin shim over the
// unified Run; nothing in this file touches the engines directly.
//
// Migration table:
//
//	Simulate(m, cfg)              → Run(m, EngineSim, cfg, RunOptions{})
//	SimulateWith(m, alg, cfg)     → Run(m, EngineSim, cfg, RunOptions{Algorithm: alg})
//	SimulateTraced(m, cfg, cap)   → Run(m, EngineSim, cfg, RunOptions{Trace: NewTraceRecorder(cap)})
//	SimulateInto(m, cfg, rec)     → Run(m, EngineSim, cfg, RunOptions{Trace: rec})
//	RunLive(m, cfg, payload)      → Run(m, EngineLive, cfg, RunOptions{Payload: payload})
//	RunLiveOpts(m, cfg, pl, o)    → Run(m, EngineLive, cfg, o) with o.Payload = pl
//	RunTCP(m, cfg, payload)       → Run(m, EngineTCP, cfg, RunOptions{Payload: payload})
//	RunTCPOpts(m, cfg, pl, o)     → Run(m, EngineTCP, cfg, o) with o.Payload = pl
//	SimResult / LiveResult        → Result (same field names and meanings)
//
// For many broadcasts back to back, prefer Open + Session.Run over any
// one-shot form: a session amortizes engine setup (the TCP mesh in
// particular) across runs.

import "time"

// SimResult is the outcome of a simulated broadcast.
//
// Deprecated: SimResult only remains as the return type of the
// deprecated Simulate variants; the unified Run/Session.Run return
// Result, which carries the same fields.
type SimResult struct {
	// Elapsed is the simulated makespan.
	Elapsed time.Duration
	// Params are the paper's characteristic parameters of the run.
	Params Params
	// ActiveProfile is the number of processors communicating in each
	// algorithm iteration.
	ActiveProfile []int
	// Trace holds the recorded events when tracing was requested.
	Trace *TraceRecorder
	// HotLinks are the ten busiest directed links of the run, most
	// loaded first — the congestion hot spots.
	HotLinks []LinkStats
	// NodeLoad is, per physical node, the occupancy of its busiest
	// outgoing link (input for viz.Heatmap).
	NodeLoad []time.Duration
}

// LiveResult is the outcome of a live (goroutine) broadcast run.
//
// Deprecated: LiveResult only remains as the return type of the
// deprecated RunLive/RunTCP variants; the unified Run/Session.Run
// return Result, which carries the same fields.
type LiveResult struct {
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// Bundles holds, per rank, the received original messages keyed by
	// origin rank. Every rank holds every source's payload.
	Bundles []map[int][]byte
	// Faults lists the faults injected during the run (in canonical
	// order), when RunOptions.Faults was set. A successful run with a
	// non-empty Faults list degraded gracefully: every injected fault
	// was absorbed without changing the delivered bundles.
	Faults []FaultEvent
}

// simResult converts to the deprecated Simulate return type.
func (r *Result) simResult() *SimResult {
	return &SimResult{
		Elapsed:       r.Elapsed,
		Params:        r.Params,
		ActiveProfile: r.ActiveProfile,
		Trace:         r.Trace,
		HotLinks:      r.HotLinks,
		NodeLoad:      r.NodeLoad,
	}
}

// liveResult converts to the deprecated RunLive/RunTCP return type.
func (r *Result) liveResult() *LiveResult {
	return &LiveResult{Elapsed: r.Elapsed, Bundles: r.Bundles, Faults: r.Faults}
}

// Simulate runs one broadcast on the simulated machine and returns timing
// and metrics. The run is deterministic: identical inputs give identical
// results.
//
// Deprecated: Use Run(m, EngineSim, cfg, RunOptions{}); Simulate is a
// thin wrapper over it and returns identical results.
func Simulate(m *Machine, cfg Config) (*SimResult, error) {
	r, err := Run(m, EngineSim, cfg, RunOptions{})
	if err != nil {
		return nil, err
	}
	return r.simResult(), nil
}

// SimulateWith is Simulate with an explicit Algorithm value instead of a
// registry name — for parameterized algorithms such as core.BrDims,
// core.ReposTo or core.WithDiscovery. cfg.Algorithm is ignored.
//
// Deprecated: Use Run with RunOptions.Algorithm; SimulateWith is a thin
// wrapper over it and returns identical results.
func SimulateWith(m *Machine, alg Algorithm, cfg Config) (*SimResult, error) {
	r, err := Run(m, EngineSim, cfg, RunOptions{Algorithm: alg})
	if err != nil {
		return nil, err
	}
	return r.simResult(), nil
}

// SimulateTraced is Simulate with event recording (at most cap events
// retained; 0 keeps all).
//
// Deprecated: Use Run with RunOptions.Trace set to NewTraceRecorder(cap);
// SimulateTraced is a thin wrapper over it and returns identical results.
func SimulateTraced(m *Machine, cfg Config, cap int) (*SimResult, error) {
	r, err := Run(m, EngineSim, cfg, RunOptions{Trace: NewTraceRecorder(cap)})
	if err != nil {
		return nil, err
	}
	return r.simResult(), nil
}

// SimulateInto is Simulate with event recording into a caller-provided
// recorder — use NewTraceRecorder to cap retention, and the recorder's
// WriteJSON/WriteChrome to export the stream afterwards.
//
// Deprecated: Use Run with RunOptions.Trace; SimulateInto is a thin
// wrapper over it and returns identical results.
func SimulateInto(m *Machine, cfg Config, rec *TraceRecorder) (*SimResult, error) {
	r, err := Run(m, EngineSim, cfg, RunOptions{Trace: rec})
	if err != nil {
		return nil, err
	}
	return r.simResult(), nil
}

// RunLive executes the broadcast on the live goroutine engine with real
// payload bytes. payload(rank) supplies each source's message; it is only
// called for source ranks. The machine's logical mesh defines the rank
// space; its cost model is not used (live runs measure wall-clock only).
//
// Deprecated: Use Run(m, EngineLive, cfg, RunOptions{Payload: payload});
// RunLive is a thin wrapper over it and returns identical results.
func RunLive(m *Machine, cfg Config, payload func(rank int) []byte) (*LiveResult, error) {
	return RunLiveOpts(m, cfg, payload, RunOptions{})
}

// RunLiveOpts is RunLive with deadlines, cancellation and fault
// injection (see RunOptions). With a deadline configured, a hung, dead
// or killed rank becomes a returned error naming the blocked rank and
// peer — the run never hangs silently.
//
// Deprecated: Use Run(m, EngineLive, cfg, opts) with RunOptions.Payload;
// RunLiveOpts is a thin wrapper over it and returns identical results.
func RunLiveOpts(m *Machine, cfg Config, payload func(rank int) []byte, opts RunOptions) (*LiveResult, error) {
	opts.Payload = payload
	r, err := Run(m, EngineLive, cfg, opts)
	if err != nil {
		return nil, err
	}
	return r.liveResult(), nil
}

// RunTCP executes the broadcast over real loopback TCP sockets — one
// listener per processor, length-prefixed frames, full mesh of
// connections — and verifies delivery like RunLive. It is the
// distributed-transport engine; use it to exercise the algorithms over a
// transport with real serialization.
//
// Deprecated: Use Run(m, EngineTCP, cfg, RunOptions{Payload: payload}) —
// or, for many broadcasts back to back, Open a Session to reuse the
// connection mesh. RunTCP is a thin wrapper over the unified path and
// returns identical results.
func RunTCP(m *Machine, cfg Config, payload func(rank int) []byte) (*LiveResult, error) {
	return RunTCPOpts(m, cfg, payload, RunOptions{})
}

// RunTCPOpts is RunTCP with deadlines, cancellation, dial retry and
// fault injection (see RunOptions). Transient connection-setup failures
// are absorbed by retry with exponential backoff; with a deadline
// configured, a hung, dead or killed rank becomes a returned error
// naming the blocked rank and peer.
//
// Deprecated: Use Run(m, EngineTCP, cfg, opts) with RunOptions.Payload —
// or, for many broadcasts back to back, Open a Session to reuse the
// connection mesh. RunTCPOpts is a thin wrapper over the unified path
// and returns identical results.
func RunTCPOpts(m *Machine, cfg Config, payload func(rank int) []byte, opts RunOptions) (*LiveResult, error) {
	opts.Payload = payload
	r, err := Run(m, EngineTCP, cfg, opts)
	if err != nil {
		return nil, err
	}
	return r.liveResult(), nil
}
