package stpbcast_test

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	stpbcast "repro"
)

// sessionCfg is the workload shared by the session tests: small enough
// to run hundreds of times, real enough to exercise combining.
var sessionCfg = stpbcast.Config{
	Algorithm:    "Br_Lin",
	Distribution: "E",
	Sources:      4,
	MsgBytes:     64,
}

func checkBundles(t *testing.T, res *stpbcast.Result, p, sources int) {
	t.Helper()
	if len(res.Bundles) != p {
		t.Fatalf("bundles for %d ranks, want %d", len(res.Bundles), p)
	}
	for rank, got := range res.Bundles {
		if len(got) != sources {
			t.Fatalf("rank %d holds %d messages, want %d", rank, len(got), sources)
		}
	}
}

// TestSessionIsolationRealEngines runs two broadcasts back to back over
// one warm session — the first under an aggressive duplicate-fault plan
// with its own tracer, the second clean with a fresh tracer — and
// asserts nothing leaks between them: no stale frames (bundles exact),
// no fault events on the clean run, no events appended to the first
// run's tracer by the second run.
func TestSessionIsolationRealEngines(t *testing.T) {
	for _, engine := range []stpbcast.Engine{stpbcast.EngineLive, stpbcast.EngineTCP} {
		t.Run(engine.String(), func(t *testing.T) {
			m := stpbcast.NewParagon(4, 4)
			s, err := stpbcast.Open(m, engine, stpbcast.SessionOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			chaos := stpbcast.NewTraceRecorder(0)
			plan := &stpbcast.FaultPlan{Seed: 7, Duplicate: 1.0}
			res1, err := s.Run(sessionCfg, stpbcast.RunOptions{
				Faults:      plan,
				Trace:       chaos,
				RecvTimeout: 10 * time.Second,
			})
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			checkBundles(t, res1, m.P(), sessionCfg.Sources)
			if len(res1.Faults) == 0 {
				t.Fatal("duplicate-everything plan injected nothing")
			}
			if chaos.Count("fault") == 0 {
				t.Fatal("fault events missing from the chaos run's tracer")
			}
			chaosEvents := len(chaos.Events)

			clean := stpbcast.NewTraceRecorder(0)
			res2, err := s.Run(sessionCfg, stpbcast.RunOptions{
				Trace:       clean,
				RecvTimeout: 10 * time.Second,
			})
			if err != nil {
				t.Fatalf("clean run: %v", err)
			}
			checkBundles(t, res2, m.P(), sessionCfg.Sources)
			if len(res2.Faults) != 0 {
				t.Fatalf("fault plan leaked into the next run: %d events", len(res2.Faults))
			}
			if n := clean.Count("fault"); n != 0 {
				t.Fatalf("clean run's tracer recorded %d fault events", n)
			}
			if len(clean.Events) == 0 {
				t.Fatal("clean run's tracer recorded nothing")
			}
			if len(chaos.Events) != chaosEvents {
				t.Fatalf("second run appended to the first run's tracer: %d -> %d",
					chaosEvents, len(chaos.Events))
			}

			stats := s.Stats()
			if stats.Runs != 2 || stats.Failures != 0 {
				t.Fatalf("stats = %+v, want 2 runs, 0 failures", stats)
			}
			if stats.Bytes <= 0 {
				t.Fatalf("stats counted no payload bytes: %+v", stats)
			}
		})
	}
}

// TestRunAsyncOverlapTCP is the pipelining acceptance test: two
// broadcasts submitted back to back on one warm TCP mesh, the second
// entering the queue while the first is still in flight. Each run
// carries a distinguishing payload fill; every delivered bundle must
// hold exactly its own run's bytes — epoch tagging on the wire keeps
// overlapping runs' frames apart.
func TestRunAsyncOverlapTCP(t *testing.T) {
	m := stpbcast.NewParagon(2, 2)
	s, err := stpbcast.Open(m, stpbcast.EngineTCP, stpbcast.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	payload := func(fill byte) func(rank int) []byte {
		return func(rank int) []byte {
			buf := make([]byte, 64)
			for i := range buf {
				buf[i] = fill
			}
			return buf
		}
	}
	// Submit both before waiting on either: the second run is queued on
	// the session while the first executes.
	futA, err := s.RunAsync(sessionCfg, stpbcast.RunOptions{
		Payload: payload(0xAA), RecvTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	futB, err := s.RunAsync(sessionCfg, stpbcast.RunOptions{
		Payload: payload(0xBB), RecvTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, fut *stpbcast.Future, fill byte) {
		res, err := fut.Wait()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkBundles(t, res, m.P(), sessionCfg.Sources)
		for rank, got := range res.Bundles {
			for origin, data := range got {
				for _, b := range data {
					if b != fill {
						t.Fatalf("%s: rank %d received byte %#x from origin %d, want %#x — frames bled across runs",
							name, rank, b, origin, fill)
					}
				}
			}
		}
	}
	check("runA", futA, 0xAA)
	check("runB", futB, 0xBB)

	// Wait is repeatable and Done is closed after completion.
	select {
	case <-futA.Done():
	default:
		t.Fatal("Done() not closed after Wait returned")
	}
	if _, err := futA.Wait(); err != nil {
		t.Fatalf("second Wait: %v", err)
	}

	if stats := s.Stats(); stats.Runs != 2 || stats.Failures != 0 {
		t.Fatalf("stats = %+v, want 2 runs, 0 failures", stats)
	}
}

// TestRunAsyncCloseDrains: Close must refuse new submissions but let an
// already-admitted async run finish on the live engine.
func TestRunAsyncCloseDrains(t *testing.T) {
	m := stpbcast.NewParagon(2, 2)
	s, err := stpbcast.Open(m, stpbcast.EngineTCP, stpbcast.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fut, err := s.RunAsync(sessionCfg, stpbcast.RunOptions{RecvTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	res, err := fut.Wait()
	if err != nil {
		t.Fatalf("admitted run failed after Close: %v", err)
	}
	checkBundles(t, res, m.P(), sessionCfg.Sources)
	if _, err := s.RunAsync(sessionCfg, stpbcast.RunOptions{}); err == nil {
		t.Fatal("RunAsync accepted after Close")
	} else if !strings.Contains(err.Error(), "closed session") {
		t.Fatalf("post-Close error %q does not mention the closed session", err)
	}
}

// TestSessionIsolationSim: the simulator has no warm engine state, so a
// session must return results identical across back-to-back runs and
// identical to the one-shot path, with per-run tracers kept apart.
func TestSessionIsolationSim(t *testing.T) {
	m := stpbcast.NewParagon(4, 4)
	s, err := stpbcast.Open(m, stpbcast.EngineSim, stpbcast.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	recA := stpbcast.NewTraceRecorder(0)
	res1, err := s.Run(sessionCfg, stpbcast.RunOptions{Trace: recA})
	if err != nil {
		t.Fatal(err)
	}
	eventsA := len(recA.Events)
	if eventsA == 0 {
		t.Fatal("first run traced nothing")
	}

	recB := stpbcast.NewTraceRecorder(0)
	res2, err := s.Run(sessionCfg, stpbcast.RunOptions{Trace: recB})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Elapsed != res2.Elapsed || !reflect.DeepEqual(res1.Params, res2.Params) {
		t.Fatalf("simulator runs not deterministic across a session:\n%v %+v\n%v %+v",
			res1.Elapsed, res1.Params, res2.Elapsed, res2.Params)
	}
	if len(recA.Events) != eventsA {
		t.Fatal("second run appended to the first run's tracer")
	}
	if len(recB.Events) != eventsA {
		t.Fatalf("tracers disagree across identical runs: %d vs %d", eventsA, len(recB.Events))
	}

	// A session run matches the one-shot unified path exactly.
	oneShot, err := stpbcast.Run(m, stpbcast.EngineSim, sessionCfg, stpbcast.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.Elapsed != res1.Elapsed || !reflect.DeepEqual(oneShot.Params, res1.Params) {
		t.Fatal("session sim run diverged from one-shot Run")
	}

	// Fault plans are meaningless under the simulator and must be
	// rejected, not ignored.
	if _, err := s.Run(sessionCfg, stpbcast.RunOptions{Faults: &stpbcast.FaultPlan{Drop: 0.5}}); err == nil {
		t.Fatal("simulator accepted a fault plan")
	}
}

// TestSessionKillThenReconnect is the acceptance scenario: an injected
// rank kill aborts a TCP run (tearing connections down), and the very
// next Run over the same session succeeds after a transparent mesh
// rebuild, visible in Stats().Reconnects.
func TestSessionKillThenReconnect(t *testing.T) {
	m := stpbcast.NewParagon(2, 2)
	s, err := stpbcast.Open(m, stpbcast.EngineTCP, stpbcast.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	_, err = s.Run(sessionCfg, stpbcast.RunOptions{
		Faults:      &stpbcast.FaultPlan{Kills: []stpbcast.FaultKill{{Rank: 1, Op: 2}}},
		RecvTimeout: 2 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "kill") {
		t.Fatalf("killed run misreported: %v", err)
	}

	res, err := s.Run(sessionCfg, stpbcast.RunOptions{RecvTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("run after kill failed: %v", err)
	}
	checkBundles(t, res, m.P(), sessionCfg.Sources)

	stats, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 2 || stats.Failures != 1 {
		t.Fatalf("stats = %+v, want 2 runs, 1 failure", stats)
	}
	if stats.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", stats.Reconnects)
	}

	// The session is closed: further runs must error, Close stays
	// idempotent and keeps reporting the final stats.
	if _, err := s.Run(sessionCfg, stpbcast.RunOptions{}); err == nil {
		t.Fatal("Run on closed session accepted")
	}
	again, err := s.Close()
	if err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if again != stats {
		t.Fatalf("Close not idempotent: %+v vs %+v", again, stats)
	}
}

// TestSessionManyRunsTCP reuses one small mesh for many broadcasts with
// varying configs — the serving-workload shape the session API exists
// for.
func TestSessionManyRunsTCP(t *testing.T) {
	m := stpbcast.NewParagon(2, 2)
	s, err := stpbcast.Open(m, stpbcast.EngineTCP, stpbcast.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	algs := []string{"Br_Lin", "Br_xy_source", "Repos_xy_source"}
	for i := 0; i < 12; i++ {
		cfg := stpbcast.Config{
			Algorithm:    algs[i%len(algs)],
			Distribution: "E",
			Sources:      2,
			MsgBytes:     32 * (i + 1),
		}
		res, err := s.Run(cfg, stpbcast.RunOptions{RecvTimeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("run %d (%s): %v", i, cfg.Algorithm, err)
		}
		checkBundles(t, res, m.P(), cfg.Sources)
	}
	if st := s.Stats(); st.Runs != 12 || st.Failures != 0 || st.Reconnects != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDeprecatedWrappersMatchUnified asserts every deprecated facade
// variant returns results identical to the unified Run path it wraps.
func TestDeprecatedWrappersMatchUnified(t *testing.T) {
	m := stpbcast.NewParagon(4, 4)
	cfg := sessionCfg

	t.Run("Simulate", func(t *testing.T) {
		old, err := stpbcast.Simulate(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		unified, err := stpbcast.Run(m, stpbcast.EngineSim, cfg, stpbcast.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := stpbcast.SimResult{
			Elapsed:       unified.Elapsed,
			Params:        unified.Params,
			ActiveProfile: unified.ActiveProfile,
			HotLinks:      unified.HotLinks,
			NodeLoad:      unified.NodeLoad,
		}
		if !reflect.DeepEqual(*old, want) {
			t.Fatalf("Simulate diverged from unified Run:\nold %+v\nnew %+v", *old, want)
		}
	})

	t.Run("SimulateWith", func(t *testing.T) {
		alg, err := stpbcast.AlgorithmByName("Br_xy_source")
		if err != nil {
			t.Fatal(err)
		}
		old, err := stpbcast.SimulateWith(m, alg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		unified, err := stpbcast.Run(m, stpbcast.EngineSim, cfg, stpbcast.RunOptions{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if old.Elapsed != unified.Elapsed || !reflect.DeepEqual(old.Params, unified.Params) {
			t.Fatal("SimulateWith diverged from unified Run with RunOptions.Algorithm")
		}
	})

	t.Run("SimulateTraced", func(t *testing.T) {
		old, err := stpbcast.SimulateTraced(m, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec := stpbcast.NewTraceRecorder(0)
		unified, err := stpbcast.Run(m, stpbcast.EngineSim, cfg, stpbcast.RunOptions{Trace: rec})
		if err != nil {
			t.Fatal(err)
		}
		if old.Trace == nil || unified.Trace != rec {
			t.Fatal("trace recorder not threaded through")
		}
		if len(old.Trace.Events) != len(rec.Events) {
			t.Fatalf("traced event counts diverged: %d vs %d",
				len(old.Trace.Events), len(rec.Events))
		}
	})

	t.Run("RunLiveOpts", func(t *testing.T) {
		payload := func(rank int) []byte { return []byte{byte(rank), 0xAB} }
		old, err := stpbcast.RunLiveOpts(m, cfg, payload, stpbcast.RunOptions{RecvTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		unified, err := stpbcast.Run(m, stpbcast.EngineLive, cfg, stpbcast.RunOptions{
			Payload:     payload,
			RecvTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(old.Bundles, unified.Bundles) {
			t.Fatal("RunLiveOpts bundles diverged from unified Run")
		}
		if !reflect.DeepEqual(old.Faults, unified.Faults) {
			t.Fatal("RunLiveOpts faults diverged from unified Run")
		}
	})

	t.Run("RunTCPOpts", func(t *testing.T) {
		small := stpbcast.NewParagon(2, 2)
		payload := func(rank int) []byte { return []byte{0xCD, byte(rank)} }
		scfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: 2}
		old, err := stpbcast.RunTCPOpts(small, scfg, payload, stpbcast.RunOptions{RecvTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		unified, err := stpbcast.Run(small, stpbcast.EngineTCP, scfg, stpbcast.RunOptions{
			Payload:     payload,
			RecvTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(old.Bundles, unified.Bundles) {
			t.Fatal("RunTCPOpts bundles diverged from unified Run")
		}
	})
}

// TestConfigValidate table-tests the shared validation entrypoint.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     stpbcast.Config
		wantErr string
	}{
		{"zero value", stpbcast.Config{}, ""},
		{"valid", sessionCfg, ""},
		{"negative bytes", stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: -1}, "negative message length"},
		{"very negative", stpbcast.Config{MsgBytes: -99999}, "negative message length"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want %q", err, tc.wantErr)
			}
		})
	}

	// Every entrypoint rejects the invalid config the same way.
	m := stpbcast.NewParagon(4, 4)
	bad := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: -1}
	if _, err := stpbcast.Plan(m, bad); err == nil || !strings.Contains(err.Error(), "negative message length") {
		t.Fatalf("Plan: %v", err)
	}
	if _, err := stpbcast.Run(m, stpbcast.EngineSim, bad, stpbcast.RunOptions{}); err == nil || !strings.Contains(err.Error(), "negative message length") {
		t.Fatalf("Run: %v", err)
	}
	s, err := stpbcast.Open(m, stpbcast.EngineSim, stpbcast.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(bad, stpbcast.RunOptions{}); err == nil || !strings.Contains(err.Error(), "negative message length") {
		t.Fatalf("Session.Run: %v", err)
	}
	if st := s.Stats(); st.Runs != 0 {
		t.Fatalf("rejected config counted as a run: %+v", st)
	}
}

// TestSessionStatsDuringRun: Stats() is documented as safe to call —
// and non-blocking — while another goroutine is inside Run(). A poller
// hammers Stats() (and the TCP machine's Reconnects()) concurrently
// with a stream of runs; the race detector enforces the safety claim,
// and the monotone run counter checks that snapshots are coherent.
func TestSessionStatsDuringRun(t *testing.T) {
	for _, engine := range []stpbcast.Engine{stpbcast.EngineLive, stpbcast.EngineTCP} {
		t.Run(engine.String(), func(t *testing.T) {
			m := stpbcast.NewParagon(2, 2)
			s, err := stpbcast.Open(m, engine, stpbcast.SessionOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			const runs = 15
			cfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: 128}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < runs; i++ {
					if _, err := s.Run(cfg, stpbcast.RunOptions{RecvTimeout: 10 * time.Second}); err != nil {
						t.Errorf("run %d: %v", i, err)
						return
					}
				}
			}()

			last := 0
			for polling := true; polling; {
				select {
				case <-done:
					polling = false
				default:
				}
				st := s.Stats()
				if st.Runs < last {
					t.Fatalf("Stats().Runs went backwards: %d -> %d", last, st.Runs)
				}
				last = st.Runs
				if st.Failures != 0 {
					t.Fatalf("unexpected failures mid-stream: %+v", st)
				}
			}
			if st := s.Stats(); st.Runs != runs {
				t.Fatalf("final Stats().Runs = %d, want %d", st.Runs, runs)
			}
		})
	}
}

// TestSessionStatsExactUnderKPortedConcurrency is the k-ported
// accounting regression: with every send routed through concurrent link
// drivers (Ports=4) on a sparse route-planned mesh, pipelined RunAsync
// submissions racing concurrent Stats() readers must still produce
// exact byte totals — each run contributes precisely the deterministic
// per-run payload volume, and Stats never exposes a partially
// accumulated run (Bytes stays a multiple of the per-run total at every
// observation). Run under -race this also proves the driver counters
// stay rank-goroutine-local.
func TestSessionStatsExactUnderKPortedConcurrency(t *testing.T) {
	m := stpbcast.NewParagon(4, 4)

	// Reference run on a plain session: the deterministic payload byte
	// total one broadcast of sessionCfg moves.
	ref, err := stpbcast.Open(m, stpbcast.EngineTCP, stpbcast.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(sessionCfg, stpbcast.RunOptions{RecvTimeout: 10 * time.Second}); err != nil {
		ref.Close()
		t.Fatalf("reference run: %v", err)
	}
	refStats, err := ref.Close()
	if err != nil {
		t.Fatal(err)
	}
	perRun := refStats.Bytes
	if perRun <= 0 {
		t.Fatalf("reference run moved no bytes: %+v", refStats)
	}

	links, err := stpbcast.RoutesFor(m, sessionCfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stpbcast.Open(m, stpbcast.EngineTCP, stpbcast.SessionOptions{Links: links})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				if st.Bytes%perRun != 0 {
					t.Errorf("Stats().Bytes = %d mid-run, not a multiple of the per-run total %d", st.Bytes, perRun)
					return
				}
				if st.Failures != 0 {
					t.Errorf("unexpected failures: %+v", st)
					return
				}
			}
		}()
	}

	const runs = 8
	futures := make([]*stpbcast.Future, runs)
	for i := range futures {
		f, err := s.RunAsync(sessionCfg, stpbcast.RunOptions{Ports: 4, RecvTimeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futures[i] = f
	}
	for i, f := range futures {
		res, err := f.Wait()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		checkBundles(t, res, m.P(), sessionCfg.Sources)
	}
	close(stop)
	readers.Wait()

	st := s.Stats()
	if st.Runs != runs || st.Failures != 0 {
		t.Fatalf("stats = %+v, want %d runs, 0 failures", st, runs)
	}
	if st.Bytes != int64(runs)*perRun {
		t.Fatalf("Stats().Bytes = %d under k-ported drivers, want exactly %d (%d runs × %d)",
			st.Bytes, int64(runs)*perRun, runs, perRun)
	}
}

// TestEngineNames pins the Engine <-> name mapping the CLI relies on.
func TestEngineNames(t *testing.T) {
	for _, e := range []stpbcast.Engine{stpbcast.EngineSim, stpbcast.EngineLive, stpbcast.EngineTCP} {
		got, err := stpbcast.ParseEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := stpbcast.ParseEngine("mpi"); err == nil {
		t.Fatal("unknown engine name accepted")
	}
	if s := stpbcast.Engine(42).String(); !strings.Contains(s, "42") {
		t.Fatalf("out-of-range engine String() = %q", s)
	}
}
