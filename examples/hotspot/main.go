// Hotspot: see the congestion arguments of the paper. 2-Step funnels
// every message through processor P0 and its links saturate; the
// message-combining Br_xy_source spreads the same broadcast across the
// whole mesh. This example runs both on a 12×12 simulated Paragon and
// renders the per-node link-load heatmaps side by side, plus the busiest
// links and the characteristic parameters of each run.
package main

import (
	"fmt"
	"log"
	"strings"

	stpbcast "repro"
	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/viz"
)

const (
	rows, cols = 12, 12
	s          = 36
	msgBytes   = 4096
)

func main() {
	machine := stpbcast.NewParagon(rows, cols)
	mesh, ok := machine.Topo.(*topology.Mesh2D)
	if !ok {
		log.Fatal("paragon machine is not a mesh")
	}

	type run struct {
		alg   string
		res   *stpbcast.SimResult
		loads []network.Time
		heat  string
	}
	var runs []run
	var globalMax network.Time
	for _, alg := range []string{"2-Step", "Br_xy_source"} {
		res, err := stpbcast.Simulate(machine, stpbcast.Config{
			Algorithm: alg, Distribution: "E", Sources: s, MsgBytes: msgBytes,
		})
		if err != nil {
			log.Fatal(err)
		}
		loads := make([]network.Time, len(res.NodeLoad))
		for i, v := range res.NodeLoad {
			loads[i] = network.Time(v)
			if loads[i] > globalMax {
				globalMax = loads[i]
			}
		}
		runs = append(runs, run{alg: alg, res: res, loads: loads})
	}
	// One shared scale, so the two grids are directly comparable.
	for i := range runs {
		heat, err := viz.HeatmapWithMax(mesh, runs[i].loads, globalMax)
		if err != nil {
			log.Fatal(err)
		}
		runs[i].heat = heat
	}

	fmt.Printf("s-to-p broadcast on a %d×%d Paragon, E(%d), L=%d\n\n", rows, cols, s, msgBytes)
	fmt.Printf("%-*s   %s\n", cols, runs[0].alg, runs[1].alg)
	left := strings.Split(strings.TrimRight(runs[0].heat, "\n"), "\n")
	right := strings.Split(strings.TrimRight(runs[1].heat, "\n"), "\n")
	for i := range left {
		fmt.Printf("%-*s   %s\n", cols, left[i], right[i])
	}
	fmt.Println("\n(' ' idle … '@' the hottest node of either run — one shared scale)")

	for _, r := range runs {
		fmt.Printf("\n%s: %.2f ms simulated, congestion=%d, av_act_proc=%.1f\n",
			r.alg, float64(r.res.Elapsed.Nanoseconds())/1e6, r.res.Params.Congestion, r.res.Params.AvgActive)
		fmt.Println("busiest links:")
		for _, h := range r.res.HotLinks[:3] {
			fmt.Printf("  %-10v busy %7.3f ms over %3d transfers\n", h.Link, h.Busy.Milliseconds(), h.Transfers)
		}
	}
	fmt.Println("\n2-Step's heat concentrates at the gather root (top-left); the")
	fmt.Println("combining algorithm's load is an order of magnitude flatter —")
	fmt.Println("the congestion story behind the paper's Figure 3.")
}
