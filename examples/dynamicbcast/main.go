// Dynamic broadcasting (the paper's motivating scenario from Varvarigos &
// Bertsekas): an iterative computation in which, each round, the
// processors whose local value changed significantly must broadcast their
// update to everyone before the next round can start.
//
// We run a damped averaging iteration on a 16×16 simulated Paragon. Each
// round, the set of "dirty" processors (those whose value moved more than
// a threshold) becomes the source set of an s-to-p broadcast. The example
// compares the cumulative communication time of three strategies across
// the whole run — the library baseline, the message-combining algorithm,
// and the repositioning algorithm — showing why the choice matters when
// the source set shrinks and shifts round by round.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	stpbcast "repro"
)

const (
	rows, cols = 16, 16
	p          = rows * cols
	msgBytes   = 2048
	threshold  = 0.02
	maxRounds  = 12
)

func main() {
	// The dirty sets are produced by the computation itself and are the
	// same for every broadcast strategy; generate them once.
	dirtySets := simulateComputation()
	fmt.Printf("damped averaging on a %d×%d Paragon: %d rounds\n", rows, cols, len(dirtySets))
	for i, set := range dirtySets {
		fmt.Printf("  round %2d: %3d dirty processors\n", i, len(set))
	}
	fmt.Println()

	for _, alg := range []string{"2-Step", "Br_xy_source", "Repos_xy_source"} {
		total := 0.0
		for _, sources := range dirtySets {
			res, err := stpbcast.Simulate(stpbcast.NewParagon(rows, cols), stpbcast.Config{
				Algorithm:   alg,
				SourceRanks: sources,
				MsgBytes:    msgBytes,
			})
			if err != nil {
				log.Fatal(err)
			}
			total += float64(res.Elapsed.Nanoseconds()) / 1e6
		}
		fmt.Printf("%-16s cumulative broadcast time: %8.2f ms\n", alg, total)
	}
	fmt.Println("\nthe message-combining algorithms amortize the shrinking, drifting")
	fmt.Println("source sets; the gather-at-P0 baseline pays the hot spot every round")
}

// simulateComputation runs the damped averaging and returns the dirty
// source set of each round (sorted ranks). The values start from a seeded
// random field with a hot corner, so early rounds have many dirty
// processors and later rounds progressively fewer — the dynamic
// broadcasting pattern the paper describes.
func simulateComputation() [][]int {
	rng := rand.New(rand.NewSource(42))
	values := make([]float64, p)
	for i := range values {
		values[i] = rng.Float64()
	}
	// A hot corner drives larger updates in one region, so the dirty
	// sets are spatially clustered — a difficult distribution shape.
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			values[r*cols+c] += 3
		}
	}
	var sets [][]int
	for round := 0; round < maxRounds; round++ {
		next := make([]float64, p)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				sum, n := values[r*cols+c], 1.0
				for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					nr, nc := r+d[0], c+d[1]
					if nr >= 0 && nr < rows && nc >= 0 && nc < cols {
						sum += values[nr*cols+nc]
						n++
					}
				}
				next[r*cols+c] = 0.5*values[r*cols+c] + 0.5*sum/n
			}
		}
		var dirty []int
		for i := range values {
			if math.Abs(next[i]-values[i]) > threshold {
				dirty = append(dirty, i)
			}
		}
		values = next
		if len(dirty) == 0 {
			break
		}
		sort.Ints(dirty)
		sets = append(sets, dirty)
	}
	return sets
}
