// Quickstart: run one s-to-p broadcast on a simulated 10×10 Intel Paragon
// and on a 128-processor Cray T3D, print the simulated time and the
// paper's characteristic parameters, then run the same broadcast on the
// live goroutine engine with real payload bytes and verify delivery.
package main

import (
	"fmt"
	"log"

	stpbcast "repro"
)

func main() {
	// --- Simulated timing on the Paragon model -------------------------
	paragon := stpbcast.NewParagon(10, 10)
	cfg := stpbcast.Config{
		Algorithm:    "Br_xy_source",
		Distribution: "E", // the equal distribution, 30 sources
		Sources:      30,
		MsgBytes:     4096,
	}
	res, err := stpbcast.Simulate(paragon, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Paragon 10×10, %s, E(30), L=4K:\n", cfg.Algorithm)
	fmt.Printf("  simulated time: %.3f ms\n", ms(res))
	fmt.Printf("  congestion=%d wait=%d send/rec=%d av_act_proc=%.1f\n",
		res.Params.Congestion, res.Params.Wait, res.Params.SendRec, res.Params.AvgActive)
	fmt.Printf("  active processors per iteration: %v\n\n", res.ActiveProfile)

	// --- The T3D inversion ---------------------------------------------
	t3d := stpbcast.NewT3D(128)
	for _, alg := range []string{"MPI_Alltoall", "Br_Lin"} {
		r, err := stpbcast.Simulate(t3d, stpbcast.Config{
			Algorithm: algT3D(alg), Distribution: "E", Sources: 40, MsgBytes: 4096,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("T3D 128, %-13s E(40), L=4K: %.3f ms\n", alg+",", ms(r))
	}
	fmt.Println("  (the personalized exchange wins on the bandwidth-rich torus)")
	fmt.Println()

	// --- Real bytes on the live engine ----------------------------------
	live, err := stpbcast.RunLive(paragon, cfg, func(rank int) []byte {
		return []byte(fmt.Sprintf("update-from-processor-%03d", rank))
	})
	if err != nil {
		log.Fatal(err)
	}
	got := live.Bundles[99] // the far-corner processor
	fmt.Printf("live engine: processor 99 received %d messages in %v, e.g. %q\n",
		len(got), live.Elapsed, string(got[0]))
}

func ms(r *stpbcast.SimResult) float64 { return float64(r.Elapsed.Nanoseconds()) / 1e6 }

// algT3D maps the display name to the registered algorithm name.
func algT3D(name string) string {
	if name == "MPI_Alltoall" {
		return "PersAlltoAll" // the T3D cost profile is already MPI
	}
	return name
}
