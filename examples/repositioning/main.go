// Repositioning in action: Section 3's answer to distribution-dependent
// performance. The example places 64 sources in the paper's difficult
// patterns on a 16×16 Paragon, draws the before/after source maps, and
// prints the gain of Repos_xy_source over Br_xy_source for each — the
// Figure 9 experiment at one source count, with pictures.
package main

import (
	"fmt"
	"log"

	stpbcast "repro"
	"repro/internal/dist"
)

const (
	rows, cols = 16, 16
	s          = 64
	msgBytes   = 6 * 1024
)

func main() {
	machine := stpbcast.NewParagon(rows, cols)

	// The ideal target Repos_xy_source generates on this machine.
	ideal, err := dist.IdealRows().Sources(rows, cols, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ideal target of Repos_xy_source on %d×%d (%d sources):\n%s\n",
		rows, cols, s, dist.Render(rows, cols, ideal))

	fmt.Printf("%-6s %14s %18s %10s\n", "dist", "Br_xy_source", "Repos_xy_source", "gain")
	for _, d := range stpbcast.Distributions() {
		plain, err := stpbcast.Simulate(machine, stpbcast.Config{
			Algorithm: "Br_xy_source", Distribution: d.Name(), Sources: s, MsgBytes: msgBytes,
		})
		if err != nil {
			log.Fatal(err)
		}
		repos, err := stpbcast.Simulate(machine, stpbcast.Config{
			Algorithm: "Repos_xy_source", Distribution: d.Name(), Sources: s, MsgBytes: msgBytes,
		})
		if err != nil {
			log.Fatal(err)
		}
		pm, rm := ms(plain), ms(repos)
		fmt.Printf("%-6s %12.2fms %16.2fms %+9.1f%%\n", d.Name(), pm, rm, (pm-rm)/pm*100)
	}

	fmt.Println("\nhard patterns (cross, square block) gain the most; near-ideal")
	fmt.Println("patterns pay only the 1–2 ms permutation — the paper's conclusion")
	fmt.Println("that repositioning should be the default on the Paragon")

	// Show what the permutation does to the square block.
	sq, err := stpbcast.DistributionByName("Sq")
	if err != nil {
		log.Fatal(err)
	}
	before, err := sq.Sources(rows, cols, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSq(%d) before repositioning:\n%s", s, dist.Render(rows, cols, before))
	fmt.Printf("\nafter repositioning (ideal rows):\n%s", dist.Render(rows, cols, ideal))
}

func ms(r *stpbcast.SimResult) float64 { return float64(r.Elapsed.Nanoseconds()) / 1e6 }
