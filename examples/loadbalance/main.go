// Dynamic load balancing for a distributed spatial data structure — the
// paper's second motivating application (Hambrusch & Khokhar, "Maintaining
// spatial data sets in distributed-memory machines").
//
// Each of 64 processors owns a region of a global quadtree-like directory
// and tracks its local load. When a processor's load crosses a split
// threshold it splits its region and must broadcast the directory update
// (region id, new boundary, new owner) to every processor, because lookups
// are routed by a replicated directory. The number and position of
// splitting processors is workload-dependent and not known in advance:
// exactly the s-to-p broadcasting problem.
//
// The example runs on the live engine — real goroutines, real bytes — and
// verifies that all 64 replicas of the directory are identical after every
// balancing phase. It then reports, on the simulated Paragon, what each
// phase's broadcast would have cost with and without repositioning.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sort"

	stpbcast "repro"
)

const (
	rows, cols = 8, 8
	p          = rows * cols
	phases     = 4
	splitLoad  = 140.0
)

// update is one directory record a splitting processor broadcasts.
type update struct {
	Region   uint32
	Boundary uint32
	NewOwner uint32
}

func encode(u update) []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint32(buf[0:], u.Region)
	binary.BigEndian.PutUint32(buf[4:], u.Boundary)
	binary.BigEndian.PutUint32(buf[8:], u.NewOwner)
	return buf
}

func decode(b []byte) update {
	return update{
		Region:   binary.BigEndian.Uint32(b[0:]),
		Boundary: binary.BigEndian.Uint32(b[4:]),
		NewOwner: binary.BigEndian.Uint32(b[8:]),
	}
}

func main() {
	rng := rand.New(rand.NewSource(7))
	load := make([]float64, p)
	for i := range load {
		load[i] = 60 + 50*rng.Float64()
	}

	machine := stpbcast.NewParagon(rows, cols)
	for phase := 0; phase < phases; phase++ {
		// Skewed insertions concentrate load in a band of regions — the
		// clustered splitter patterns the paper's distributions model.
		for i := 0; i < 600; i++ {
			r := int(rng.NormFloat64()*6+float64(8*phase)) % p
			if r < 0 {
				r += p
			}
			load[r] += 1.5
		}
		var splitters []int
		for i, l := range load {
			if l > splitLoad {
				splitters = append(splitters, i)
			}
		}
		sort.Ints(splitters)
		if len(splitters) == 0 {
			fmt.Printf("phase %d: no splits\n", phase)
			continue
		}

		// Broadcast the directory updates on the live engine and verify
		// replica consistency.
		cfg := stpbcast.Config{Algorithm: "Br_xy_source", SourceRanks: splitters, MsgBytes: 12}
		res, err := stpbcast.RunLive(machine, cfg, func(rank int) []byte {
			return encode(update{
				Region:   uint32(rank),
				Boundary: uint32(1000*rank + phase),
				NewOwner: uint32((rank + 1) % p),
			})
		})
		if err != nil {
			log.Fatal(err)
		}
		reference := directoryOf(res.Bundles[0])
		for rank := 1; rank < p; rank++ {
			if got := directoryOf(res.Bundles[rank]); got != reference {
				log.Fatalf("phase %d: replica %d diverged: %q vs %q", phase, rank, got, reference)
			}
		}

		// Price the same broadcast on the simulated machine.
		plain, err := stpbcast.Simulate(machine, stpbcast.Config{
			Algorithm: "Br_xy_source", SourceRanks: splitters, MsgBytes: 12,
		})
		if err != nil {
			log.Fatal(err)
		}
		repos, err := stpbcast.Simulate(machine, stpbcast.Config{
			Algorithm: "Repos_xy_source", SourceRanks: splitters, MsgBytes: 12,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("phase %d: %2d splitters, replicas consistent; simulated broadcast %.3f ms (repositioned %.3f ms)\n",
			phase, len(splitters), msOf(plain), msOf(repos))

		// Splitting halves the splitter loads.
		for _, r := range splitters {
			load[r] /= 2
		}
	}
	fmt.Println("directory replicated consistently through all balancing phases")
}

// directoryOf canonicalizes a received bundle into a comparable string.
func directoryOf(bundle map[int][]byte) string {
	origins := make([]int, 0, len(bundle))
	for o := range bundle {
		origins = append(origins, o)
	}
	sort.Ints(origins)
	out := ""
	for _, o := range origins {
		u := decode(bundle[o])
		out += fmt.Sprintf("[%d:%d→%d]", u.Region, u.Boundary, u.NewOwner)
	}
	return out
}

func msOf(r *stpbcast.SimResult) float64 { return float64(r.Elapsed.Nanoseconds()) / 1e6 }
