package stpbcast_test

import (
	"testing"

	stpbcast "repro"
)

// Each Benchmark below regenerates one table or figure of the paper
// (Section 5). The benchmark time is the host cost of the simulation; the
// reported custom metrics carry the reproduced result itself:
// "sim_ms_total" sums the simulated broadcast times of every point of the
// figure, and "points" counts the measured (x, curve) pairs. Run
//
//	go test -bench=Fig -benchmem
//
// to regenerate everything, or cmd/stpbench to print the full tables.

func benchExperiment(b *testing.B, id string) {
	exp, err := stpbcast.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var total float64
	points := 0
	for i := 0; i < b.N; i++ {
		s, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		points = 0
		for _, curve := range s.Order {
			for i := range s.XLabels {
				total += s.Get(curve, i)
				points++
			}
		}
	}
	b.ReportMetric(total, "sim_ms_total")
	b.ReportMetric(float64(points), "points")
}

// BenchmarkFig2Parameters regenerates the Figure 2 characteristic
// parameter table (congestion, wait, send/rec, av_msg_lgth, av_act_proc).
func BenchmarkFig2Parameters(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3SourcesSweep regenerates Figure 3: 10×10 Paragon, equal
// distribution, L=4K, s=1..100, seven algorithms.
func BenchmarkFig3SourcesSweep(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4MessageSweep regenerates Figure 4: message-length sweep on
// the right diagonal distribution.
func BenchmarkFig4MessageSweep(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5MachineSweep regenerates Figure 5: machine sizes 4..256.
func BenchmarkFig5MachineSweep(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6Distributions regenerates Figure 6: all eight source
// distributions × the three Br algorithms.
func BenchmarkFig6Distributions(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7FixedVolume regenerates Figure 7: fixed 80K total volume
// spread over 5..80 sources.
func BenchmarkFig7FixedVolume(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Dimensions regenerates Figure 8: the 120-processor machine
// under every factorization.
func BenchmarkFig8Dimensions(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9ReposSources regenerates Figure 9: repositioning gain vs
// source count.
func BenchmarkFig9ReposSources(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10ReposMessage regenerates Figure 10: repositioning gain vs
// message length.
func BenchmarkFig10ReposMessage(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11T3DAllGather regenerates Figure 11 (a: machine sweep,
// b: source sweep) for MPI_AllGather on the T3D.
func BenchmarkFig11T3DAllGather(b *testing.B) {
	b.Run("a", func(b *testing.B) { benchExperiment(b, "fig11a") })
	b.Run("b", func(b *testing.B) { benchExperiment(b, "fig11b") })
}

// BenchmarkFig12T3DFixedVolume regenerates Figure 12: fixed 128K volume on
// the 128-processor T3D.
func BenchmarkFig12T3DFixedVolume(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13T3DCompare regenerates Figure 13 (a: source sweep,
// b: distribution sweep) comparing AllGather, Alltoall and Br_Lin.
func BenchmarkFig13T3DCompare(b *testing.B) {
	b.Run("a", func(b *testing.B) { benchExperiment(b, "fig13a") })
	b.Run("b", func(b *testing.B) { benchExperiment(b, "fig13b") })
}

// BenchmarkPartitioningAblation regenerates the Section 5.2 comparison of
// partitioning vs repositioning.
func BenchmarkPartitioningAblation(b *testing.B) { benchExperiment(b, "ablation-part") }

// BenchmarkIndexingAblation compares snake vs row-major Br_Lin.
func BenchmarkIndexingAblation(b *testing.B) { benchExperiment(b, "ablation-indexing") }

// BenchmarkSwitchingAblation compares wormhole vs store-and-forward.
func BenchmarkSwitchingAblation(b *testing.B) { benchExperiment(b, "ablation-switching") }

// BenchmarkPlacementAblation compares T3D placements.
func BenchmarkPlacementAblation(b *testing.B) { benchExperiment(b, "ablation-placement") }

// BenchmarkIdealTargetAblation compares Repos_Lin repositioning targets.
func BenchmarkIdealTargetAblation(b *testing.B) { benchExperiment(b, "ablation-ideal") }

// BenchmarkSimulatorHost measures the host-side cost of the discrete-event
// engine itself on a representative instance (useful when optimizing the
// simulator, independent of any figure).
func BenchmarkSimulatorHost(b *testing.B) {
	m := stpbcast.NewParagon(16, 16)
	cfg := stpbcast.Config{Algorithm: "Br_xy_source", Distribution: "E", Sources: 64, MsgBytes: 4096}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stpbcast.Simulate(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveEngineHost measures the live goroutine engine moving real
// bytes on the same instance.
func BenchmarkLiveEngineHost(b *testing.B) {
	m := stpbcast.NewParagon(8, 8)
	cfg := stpbcast.Config{Algorithm: "Br_xy_source", Distribution: "E", Sources: 16, MsgBytes: 4096}
	payload := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stpbcast.RunLive(m, cfg, func(int) []byte { return payload }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPEngineHost measures the loopback-socket engine moving real
// bytes end to end (connection setup included — it dominates, which is
// why the simulator exists for timing studies).
func BenchmarkTCPEngineHost(b *testing.B) {
	m := stpbcast.NewParagon(4, 4)
	cfg := stpbcast.Config{Algorithm: "Br_xy_source", Distribution: "E", Sources: 8, MsgBytes: 4096}
	payload := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stpbcast.RunTCP(m, cfg, func(int) []byte { return payload }); err != nil {
			b.Fatal(err)
		}
	}
}
