package stpbcast_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	stpbcast "repro"
)

// TestConfigValidateCollectives table-tests the capability-row checks:
// each case lists the substrings (field names included) the joined error
// must carry, or none for a valid config.
func TestConfigValidateCollectives(t *testing.T) {
	cases := []struct {
		name string
		cfg  stpbcast.Config
		want []string // substrings of the joined error; empty means valid
	}{
		{
			"broadcast zero collective",
			stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 4, MsgBytes: 64},
			nil,
		},
		{
			"allreduce sourceless",
			stpbcast.Config{Collective: stpbcast.CollectiveAllReduce, Algorithm: "AllRed_RecDouble", MsgBytes: 64},
			nil,
		},
		{
			"alltoall sourceless",
			stpbcast.Config{Collective: stpbcast.CollectiveAllToAll, Algorithm: "A2A_JungSakho", MsgBytes: 64},
			nil,
		},
		{
			"scatter explicit root",
			stpbcast.Config{Collective: stpbcast.CollectiveScatter, Algorithm: "Scatter_Binomial", SourceRanks: []int{3}, MsgBytes: 64},
			nil,
		},
		{
			"unknown collective",
			stpbcast.Config{Collective: "Gossip", Algorithm: "Br_Lin", MsgBytes: 64},
			[]string{"Config.Collective", "unknown collective"},
		},
		{
			"source ranks on an all-to-all",
			stpbcast.Config{Collective: stpbcast.CollectiveAllToAll, Algorithm: "A2A_Pairwise", SourceRanks: []int{0, 1}, MsgBytes: 64},
			[]string{"Config.SourceRanks", "AllToAll"},
		},
		{
			"distribution on an allgather",
			stpbcast.Config{Collective: stpbcast.CollectiveAllGather, Algorithm: "Ag_Ring", Distribution: "E", Sources: 4, MsgBytes: 64},
			[]string{"Config.Distribution", "Config.Sources", "AllGather"},
		},
		{
			"two roots on a scatter",
			stpbcast.Config{Collective: stpbcast.CollectiveScatter, Algorithm: "Scatter_Binomial", SourceRanks: []int{0, 1}, MsgBytes: 64},
			[]string{"Config.SourceRanks", "single root"},
		},
		{
			"per-source lengths on a reduce",
			stpbcast.Config{Collective: stpbcast.CollectiveReduce, Algorithm: "Red_Tree", Distribution: "E", Sources: 4, MsgBytes: 64, MsgBytesFor: func(int) int { return 8 }},
			[]string{"Config.MsgBytesFor", "broadcast-only"},
		},
		{
			"every violation reported at once",
			stpbcast.Config{Collective: stpbcast.CollectiveAllToAll, Algorithm: "A2A_Pairwise", Distribution: "E", Sources: 4, SourceRanks: []int{0}, MsgBytes: -5},
			[]string{"Config.Distribution", "Config.Sources", "Config.SourceRanks", "Config.MsgBytes", "negative message length"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if len(tc.want) == 0 {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", tc.want)
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("Validate() = %q, missing %q", err, sub)
				}
			}
		})
	}
}

// repeated returns n bytes of value v — the facade's default payload
// byte pattern.
func repeated(v byte, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = v
	}
	return buf
}

// TestRunCollectives drives every non-broadcast collective through the
// unified Run API on the simulator and the live engine with default
// payloads and checks the delivered bundles byte-exactly (live) and the
// engines' acceptance (sim, which prices lengths only).
func TestRunCollectives(t *testing.T) {
	m := stpbcast.NewParagon(4, 4)
	p := 16
	const L = 32
	sum := byte(0)
	for r := 0; r < p; r++ {
		sum += byte(r)
	}
	cases := []struct {
		name string
		cfg  stpbcast.Config
		// want returns the expected bundle of one rank.
		want func(rank int) map[int][]byte
	}{
		{
			"reduce",
			stpbcast.Config{Collective: stpbcast.CollectiveReduce, Algorithm: "Red_Tree", MsgBytes: L},
			func(rank int) map[int][]byte {
				if rank != 0 {
					return map[int][]byte{}
				}
				return map[int][]byte{stpbcast.ReducedOrigin: repeated(sum, L)}
			},
		},
		{
			"allreduce",
			stpbcast.Config{Collective: stpbcast.CollectiveAllReduce, Algorithm: "AllRed_RecDouble", MsgBytes: L},
			func(rank int) map[int][]byte {
				return map[int][]byte{stpbcast.ReducedOrigin: repeated(sum, L)}
			},
		},
		{
			"scatter",
			stpbcast.Config{Collective: stpbcast.CollectiveScatter, Algorithm: "Scatter_Binomial", MsgBytes: L},
			func(rank int) map[int][]byte {
				// Root 0's chunk d is byte(0 + 131·d).
				return map[int][]byte{rank: repeated(byte(131*rank), L)}
			},
		},
		{
			"allgather",
			stpbcast.Config{Collective: stpbcast.CollectiveAllGather, Algorithm: "Ag_RecDouble", MsgBytes: L},
			func(rank int) map[int][]byte {
				out := make(map[int][]byte, p)
				for o := 0; o < p; o++ {
					out[o] = repeated(byte(o), L)
				}
				return out
			},
		},
		{
			"alltoall",
			stpbcast.Config{Collective: stpbcast.CollectiveAllToAll, Algorithm: "A2A_JungSakho", MsgBytes: L},
			func(rank int) map[int][]byte {
				out := make(map[int][]byte, p)
				for o := 0; o < p; o++ {
					out[o] = repeated(byte(o+131*rank), L)
				}
				return out
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if res, err := stpbcast.Run(m, stpbcast.EngineSim, tc.cfg, stpbcast.RunOptions{}); err != nil {
				t.Fatalf("EngineSim: %v", err)
			} else if res.Elapsed <= 0 {
				t.Fatalf("EngineSim: non-positive elapsed %v", res.Elapsed)
			}
			res, err := stpbcast.Run(m, stpbcast.EngineLive, tc.cfg, stpbcast.RunOptions{})
			if err != nil {
				t.Fatalf("EngineLive: %v", err)
			}
			if len(res.Bundles) != p {
				t.Fatalf("bundles for %d ranks, want %d", len(res.Bundles), p)
			}
			for rank, got := range res.Bundles {
				want := tc.want(rank)
				if len(got) != len(want) {
					t.Fatalf("rank %d holds %d entries, want %d", rank, len(got), len(want))
				}
				for o, data := range want {
					if !bytes.Equal(got[o], data) {
						t.Fatalf("rank %d origin %d: got %v, want %v", rank, o, got[o], data)
					}
				}
			}
		})
	}
}

// TestRunCollectiveAuto lets the planner choose for each collective and
// checks the decision lands on an algorithm of that collective.
func TestRunCollectiveAuto(t *testing.T) {
	m := stpbcast.NewParagon(4, 4)
	for _, coll := range stpbcast.Collectives() {
		cfg := stpbcast.Config{Collective: coll, Algorithm: stpbcast.AutoAlgorithm, MsgBytes: 64}
		if coll == stpbcast.CollectiveBroadcast {
			cfg.Distribution = "E"
			cfg.Sources = 4
		}
		dec, err := stpbcast.Plan(m, cfg)
		if err != nil {
			t.Fatalf("%s: Plan: %v", coll, err)
		}
		if _, err := stpbcast.AlgorithmByNameFor(coll, dec.Algorithm); err != nil {
			t.Fatalf("%s: planner chose %q: %v", coll, dec.Algorithm, err)
		}
		if _, err := stpbcast.Run(m, stpbcast.EngineSim, cfg, stpbcast.RunOptions{}); err != nil {
			t.Fatalf("%s: Run(Auto): %v", coll, err)
		}
	}
}

// TestAutoSelectsJungSakho is the acceptance check for the torus
// all-to-all: on the T3D at latency-bound chunk sizes the planner's
// Auto must pick the Jung–Sakho dimension-ordered schedule over the
// direct pairwise exchange (the analytic model predicts the crossover
// and the probe tier confirms it; at large L the preference flips).
func TestAutoSelectsJungSakho(t *testing.T) {
	m := stpbcast.NewT3D(64)
	dec, err := stpbcast.Plan(m, stpbcast.Config{
		Collective: stpbcast.CollectiveAllToAll,
		MsgBytes:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Algorithm != "A2A_JungSakho" {
		t.Fatalf("Auto chose %q for AllToAll on T3D(64) at L=64, want A2A_JungSakho", dec.Algorithm)
	}
}

// TestRunOptionsAlgorithmCollectiveGuard: an explicit RunOptions.Algorithm
// whose collective tag disagrees with Config.Collective is rejected on
// every engine path, and a named Config.Algorithm of the wrong collective
// is rejected by resolution.
func TestRunOptionsAlgorithmCollectiveGuard(t *testing.T) {
	m := stpbcast.NewParagon(4, 4)
	brLin, err := stpbcast.AlgorithmByName("Br_Lin")
	if err != nil {
		t.Fatal(err)
	}
	cfg := stpbcast.Config{Collective: stpbcast.CollectiveAllReduce, Algorithm: "AllRed_RecDouble", MsgBytes: 64}
	_, err = stpbcast.Run(m, stpbcast.EngineSim, cfg, stpbcast.RunOptions{Algorithm: brLin})
	if err == nil || !strings.Contains(err.Error(), "implements Broadcast") {
		t.Fatalf("sim run with mismatched explicit algorithm: %v, want collective mismatch", err)
	}
	_, err = stpbcast.Run(m, stpbcast.EngineLive, cfg, stpbcast.RunOptions{Algorithm: brLin})
	if err == nil || !strings.Contains(err.Error(), "implements Broadcast") {
		t.Fatalf("live run with mismatched explicit algorithm: %v, want collective mismatch", err)
	}
	named := stpbcast.Config{Collective: stpbcast.CollectiveAllReduce, Algorithm: "Br_Lin", MsgBytes: 64}
	_, err = stpbcast.Run(m, stpbcast.EngineSim, named, stpbcast.RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "implements Broadcast, not AllReduce") {
		t.Fatalf("sim run with mismatched named algorithm: %v, want collective mismatch", err)
	}
}

// TestAlgorithmsForPartition: the per-collective registries are disjoint,
// non-empty, and together cover the full registry surface.
func TestAlgorithmsForPartition(t *testing.T) {
	seen := map[string]stpbcast.Collective{}
	for _, coll := range stpbcast.Collectives() {
		algs := stpbcast.AlgorithmsFor(coll)
		if len(algs) == 0 {
			t.Fatalf("no algorithms registered for %s", coll)
		}
		for _, a := range algs {
			if prev, dup := seen[a.Name()]; dup {
				t.Fatalf("algorithm %s listed under both %s and %s", a.Name(), prev, coll)
			}
			seen[a.Name()] = coll
		}
	}
	var names []string
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(stpbcast.Algorithms()) >= len(names) {
		t.Fatalf("broadcast registry (%d entries) should be a strict subset of the %d collective entries %v",
			len(stpbcast.Algorithms()), len(names), names)
	}
}
