package stpbcast_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	stpbcast "repro"
	"repro/internal/obs"
	"repro/internal/trace"
)

// kindSeq extracts each rank's ordered event sequence, keeping only the
// kinds every engine emits identically: send, recv and barrier follow the
// algorithm's program order on all engines, while wait is timing-dependent
// and combine exists only under the simulator's virtual clock.
func kindSeq(events []obs.Event, p int) [][]string {
	out := make([][]string, p)
	for _, e := range events {
		switch e.Kind {
		case obs.KindSend, obs.KindRecv:
			out[e.Rank] = append(out[e.Rank], fmt.Sprintf("%s:%d", e.Kind, e.Peer))
		case obs.KindBarrier:
			out[e.Rank] = append(out[e.Rank], "barrier")
		}
	}
	return out
}

// TestCrossEngineEventSequence runs one algorithm on the simulator, the
// live goroutine engine and the TCP engine, and asserts all three trace
// the same per-rank sequence of communication events — the unified event
// model's core invariant.
func TestCrossEngineEventSequence(t *testing.T) {
	m := stpbcast.NewParagon(2, 2)
	cfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: 64}
	payload := func(rank int) []byte { return bytes.Repeat([]byte{byte(rank)}, 64) }

	simRec := trace.NewRecorder(0)
	if _, err := stpbcast.SimulateInto(m, cfg, simRec); err != nil {
		t.Fatal(err)
	}
	simSeq := kindSeq(simRec.Events, m.P())

	for _, engine := range []string{"live", "tcp"} {
		rec := trace.NewRecorder(0)
		opts := stpbcast.RunOptions{Trace: rec, RecvTimeout: 10 * time.Second}
		var err error
		if engine == "live" {
			_, err = stpbcast.RunLiveOpts(m, cfg, payload, opts)
		} else {
			_, err = stpbcast.RunTCPOpts(m, cfg, payload, opts)
		}
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		seq := kindSeq(rec.Events, m.P())
		for r := range simSeq {
			if !reflect.DeepEqual(simSeq[r], seq[r]) {
				t.Errorf("rank %d: sim traced %v, %s traced %v", r, simSeq[r], engine, seq[r])
			}
		}
		// Wall clocks must be stamped and non-decreasing per rank.
		if !obs.HasWall(rec.Events) {
			t.Errorf("%s: no wall-clock timestamps", engine)
		}
	}
}

// TestTraceFaultsInStream asserts injected faults land in the same event
// stream as traffic, tagged with the fault kind.
func TestTraceFaultsInStream(t *testing.T) {
	m := stpbcast.NewParagon(2, 2)
	cfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: 64}
	payload := func(rank int) []byte { return bytes.Repeat([]byte{byte(rank)}, 64) }
	rec := trace.NewRecorder(0)
	plan := stpbcast.FaultPlan{
		Faults: []stpbcast.Fault{{Kind: stpbcast.FaultDuplicate, Src: 0, Dst: 1, Msg: 0}},
	}
	res, err := stpbcast.RunLiveOpts(m, cfg, payload, stpbcast.RunOptions{
		Trace:       rec,
		Faults:      &plan,
		RecvTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if got := rec.Count(obs.KindFault); got != len(res.Faults) {
		t.Fatalf("stream has %d fault events, injector reports %d", got, len(res.Faults))
	}
	found := false
	for _, e := range rec.Events {
		if e.Kind == obs.KindFault {
			if e.Fault != "duplicate" || e.Rank != 0 || e.Peer != 1 {
				t.Fatalf("fault event mis-tagged: %+v", e)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no fault event in stream")
	}
}
