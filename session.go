package stpbcast

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Engine selects the execution engine behind the unified Run API.
type Engine int

const (
	// EngineSim is the deterministic discrete-event simulator: virtual
	// time, contention-aware routing, no payload bytes moved.
	EngineSim Engine = iota
	// EngineLive is the goroutine runtime: real payload bytes through
	// in-process mailboxes, wall-clock timing.
	EngineLive
	// EngineTCP is the distributed-transport engine: real payload bytes
	// as length-prefixed frames over a full mesh of loopback TCP sockets.
	EngineTCP
)

// String returns the engine's CLI name ("sim", "live", "tcp").
func (e Engine) String() string {
	switch e {
	case EngineSim:
		return "sim"
	case EngineLive:
		return "live"
	case EngineTCP:
		return "tcp"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps a CLI name ("sim", "live", "tcp") to its Engine.
func ParseEngine(name string) (Engine, error) {
	switch strings.ToLower(name) {
	case "sim":
		return EngineSim, nil
	case "live":
		return EngineLive, nil
	case "tcp":
		return EngineTCP, nil
	}
	return 0, fmt.Errorf("stpbcast: unknown engine %q (want sim, live or tcp)", name)
}

// SessionOptions configure engine setup for Open. The zero value uses
// the defaults.
type SessionOptions struct {
	// Context, when non-nil, cancels engine setup (the TCP engine's dial
	// backoff waits) and later mesh rebuilds started by Session.Run calls
	// that pass no context of their own.
	Context context.Context
	// DialAttempts/DialBackoff tune the TCP engine's connection-setup
	// retry, remembered for reconnects (ignored by the other engines);
	// zero means the defaults.
	DialAttempts int
	DialBackoff  time.Duration
	// DisableNoDelay leaves Nagle's algorithm enabled on the TCP
	// engine's mesh sockets (ignored by the other engines). By default
	// every connection sets TCP_NODELAY so barrier tokens and sub-MSS
	// broadcast hops are never stalled by the kernel's send coalescing;
	// disabling it exists for batching experiments.
	DisableNoDelay bool
	// Links, when non-nil, restricts the TCP engine's dialed mesh to
	// the listed logical links instead of the full O(p²) pair set:
	// Open establishes one connection per distinct unordered pair and
	// any send outside the plan falls back to an on-demand dial.
	// RoutesFor extracts the plan for a configuration; at p in the
	// hundreds the sparse mesh is what keeps setup time and descriptor
	// count proportional to the algorithm's ~p·log p schedule rather
	// than p². Ignored by the other engines. An empty non-nil slice
	// plans no links (everything dials lazily).
	Links [][2]int
	// Cluster, when non-nil, runs the TCP mesh across worker OS
	// processes instead of in-process: Open stands up a coordinator
	// that spawns (or adopts) the workers, hands each a contiguous rank
	// range and its share of the Links plan, and wires the mesh across
	// process boundaries; Run then drives cluster-wide broadcasts
	// through the same Session API. EngineTCP only — Open rejects the
	// other engines. See ClusterSpec for the run-option restrictions a
	// distributed session imposes.
	Cluster *ClusterSpec
}

// ClusterSpec configures a multi-process TCP session (see
// SessionOptions.Cluster). The mesh's p ranks are split into Workers
// contiguous near-equal ranges, one worker process each; the planned
// link set (SessionOptions.Links, or the full mesh when nil) is
// partitioned so intra-worker pairs stay in-process and inter-worker
// pairs cross the wire with the same frame protocol.
//
// A cluster session moves run specs, not Go values, between processes,
// so Run rejects options that cannot cross a process boundary:
// RunOptions.Algorithm, Payload, Faults and Trace, Config.MsgBytesFor,
// and FlushThreshold must be unset (Ports is supported). Sources send
// the default deterministic payload (MsgBytes bytes of the rank value)
// and every worker verifies its own ranks' bundles byte-exactly;
// Result.Bundles is nil — payload bytes never travel the control plane.
// The repositioning algorithms (Repos_*, Part_*) are rejected: their
// final bundles are not full broadcasts, which is the invariant the
// workers verify.
type ClusterSpec struct {
	// Workers is the number of worker processes, 1 ≤ Workers ≤ p.
	Workers int
	// WorkerCmd, when non-nil, is the argv of the worker command to
	// spawn; the coordinator passes the control address in the
	// STPBCAST_CLUSTER_WORKER environment variable. nil re-executes the
	// current binary — any main that calls MaybeClusterWorker first
	// (cmd/stpworker, cmd/stpbench) can serve.
	WorkerCmd []string
	// Adopt disables spawning: the session waits for Workers externally
	// started workers to dial ControlAddr.
	Adopt bool
	// ControlAddr is the coordinator's control listener address. Empty
	// means an ephemeral loopback port (fine for spawned workers, which
	// inherit it; adopted workers need a well-known address).
	ControlAddr string
	// AdoptTimeout bounds the wait for workers to dial in; 0 means a
	// generous default.
	AdoptTimeout time.Duration
	// ListenHost is the host every worker binds its mesh listeners to.
	// Empty means loopback; workers spread across hosts need an
	// externally visible address.
	ListenHost string
}

// MaybeClusterWorker turns the current process into a cluster worker
// when the coordinator spawned it (the STPBCAST_CLUSTER_WORKER
// environment variable carries the control address): it serves the
// cluster session until it closes, then exits the process. In ordinary
// processes it returns immediately, doing nothing. Any binary that may
// be named in (or default to) ClusterSpec.WorkerCmd must call it at the
// top of main.
func MaybeClusterWorker() { cluster.MaybeWorker() }

// SessionStats aggregate a session's activity across runs.
type SessionStats struct {
	// Runs counts Session.Run calls that passed validation and reached
	// the engine; Failures counts those that returned an error.
	Runs     int
	Failures int
	// Bytes totals the algorithm payload bytes sent across all
	// successful runs, summed over ranks (simulated lengths under
	// EngineSim; barrier/dissemination overhead excluded).
	Bytes int64
	// Reconnects counts TCP mesh rebuilds after an aborted run or a
	// connection failure (always 0 for the other engines).
	Reconnects int
}

// Session is a persistent broadcast engine: Open stands the engine up
// once — for EngineTCP that is one listener per rank, the dialed O(p²)
// connection mesh and the reader pumps; for EngineLive the mailboxes and
// barrier — and Run executes many broadcasts over it, each isolated from
// the last (fresh mailboxes, per-run epoch on the wire, per-run fault
// injector and tracer). Close tears the engine down and returns the
// aggregate stats.
//
// For back-to-back broadcasts this amortizes setup: the TCP mesh, whose
// construction dominates a one-shot RunTCP, is built once. A run that
// aborts (panic, injected kill, deadline) does not end the session — the
// next Run reuses the engine, rebuilding the TCP mesh if the abort
// damaged it (counted in SessionStats.Reconnects).
//
// Run and Close serialize; a Session executes one run at a time.
// Concurrent Run calls are safe — they queue. Stats is safe to call from
// any goroutine at any moment, including while a run is in flight, and
// never blocks behind one (the daemon's /v1/sessions and /metrics
// endpoints poll it under load).
type Session struct {
	// runMu serializes Run and Close: one broadcast (or teardown) at a
	// time per session.
	runMu sync.Mutex
	// mu guards stats and closed. It is only ever held for field access —
	// never across an engine run — so Stats answers immediately even while
	// a slow broadcast holds runMu.
	mu     sync.Mutex
	m      *Machine
	engine Engine
	opts   SessionOptions
	liveM  *live.Machine
	tcpM   *tcp.Machine
	clu    *cluster.Coordinator
	stats  SessionStats
	closed bool
	// pending counts admitted RunAsync broadcasts not yet finished;
	// Close drains it before tearing the engine down, so an async run
	// admitted before Close always completes on a live engine.
	pending sync.WaitGroup
}

// Open stands up a persistent engine for machine m. The caller owns the
// session and must Close it.
func Open(m *Machine, engine Engine, opts SessionOptions) (*Session, error) {
	s := &Session{m: m, engine: engine, opts: opts}
	if opts.Cluster != nil && engine != EngineTCP {
		return nil, fmt.Errorf("stpbcast: cluster sessions require EngineTCP, not %v", engine)
	}
	switch engine {
	case EngineSim:
		// The simulator builds its (cheap) network per run for
		// determinism; validate the machine once so a bad topology
		// surfaces at Open like the other engines' setup errors.
		if _, err := m.NewNetwork(); err != nil {
			return nil, err
		}
	case EngineLive:
		lm, err := live.NewMachine(m.P())
		if err != nil {
			return nil, err
		}
		s.liveM = lm
	case EngineTCP:
		if cs := opts.Cluster; cs != nil {
			c, err := cluster.Start(cluster.Spec{
				Workers:        cs.Workers,
				P:              m.P(),
				Links:          opts.Links,
				WorkerCmd:      cs.WorkerCmd,
				Adopt:          cs.Adopt,
				ControlAddr:    cs.ControlAddr,
				AdoptTimeout:   cs.AdoptTimeout,
				ListenHost:     cs.ListenHost,
				DialAttempts:   opts.DialAttempts,
				DialBackoff:    opts.DialBackoff,
				DisableNoDelay: opts.DisableNoDelay,
			})
			if err != nil {
				return nil, err
			}
			s.clu = c
			return s, nil
		}
		tm, err := tcp.NewMachine(m.P(), tcp.Options{
			Context:        opts.Context,
			DialAttempts:   opts.DialAttempts,
			DialBackoff:    opts.DialBackoff,
			DisableNoDelay: opts.DisableNoDelay,
			Links:          opts.Links,
		})
		if err != nil {
			return nil, err
		}
		s.tcpM = tm
	default:
		return nil, fmt.Errorf("stpbcast: unknown engine %v", engine)
	}
	return s, nil
}

// RoutesFor extracts the sparse connection plan for one configuration:
// the directed logical links the configured algorithm's schedule uses on
// machine m, plus the engine's dissemination-barrier links. Feed the
// result to SessionOptions.Links to open a TCP session that dials only
// those connections — at p in the hundreds that replaces the O(p²)
// full-mesh setup with one proportional to the algorithm's ~p·log p
// schedule. Config.Algorithm AutoAlgorithm resolves through the planner
// exactly as Run would.
func RoutesFor(m *Machine, cfg Config) ([][2]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := cfg.spec(m)
	if err != nil {
		return nil, err
	}
	alg, err := resolveAlgorithm(m, cfg, spec)
	if err != nil {
		return nil, err
	}
	return plan.Routes(m, alg, spec, cfg.MsgBytes)
}

// Engine returns the engine the session was opened with.
func (s *Session) Engine() Engine { return s.engine }

// Stats returns the session's aggregate stats so far. It is safe for
// concurrent use from any goroutine and does not block behind an
// in-flight Run or Close: it reads the counters under a short-lived
// field lock (TCP reconnects come from an atomic), so a monitoring
// endpoint can poll it while a slow broadcast is executing. Counters
// from a run still in flight appear only once that run completes.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	if s.tcpM != nil && !s.closed {
		st.Reconnects = s.tcpM.Reconnects()
	}
	if s.clu != nil && !s.closed {
		st.Reconnects = s.clu.Resets()
	}
	return st
}

// Close tears the engine down (TCP listeners, connections and reader
// pumps joined) and returns the session's aggregate stats. Close is
// idempotent and safe for concurrent use with Run and RunAsync: it
// stops admitting new runs, drains every run already admitted — queued
// synchronous callers and in-flight futures alike — and only then
// touches the engine, so a Run or RunAsync that arrives after Close
// reports a closed-session error instead of touching the torn-down
// engine.
func (s *Session) Close() (SessionStats, error) {
	s.mu.Lock()
	if s.closed {
		stats := s.stats
		s.mu.Unlock()
		return stats, nil
	}
	s.closed = true
	s.mu.Unlock()
	// Admitted async runs still need the engine; let them finish before
	// teardown (they cannot deadlock with us: we hold neither lock).
	s.pending.Wait()
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.tcpM != nil {
		s.stats.Reconnects = s.tcpM.Reconnects()
		err = s.tcpM.Close()
	}
	if s.clu != nil {
		s.stats.Reconnects = s.clu.Resets()
		err = s.clu.Close()
	}
	if s.liveM != nil {
		err = s.liveM.Close()
	}
	return s.stats, err
}

// Run executes one broadcast over the session's warm engine. Every call
// is isolated from its predecessors: fresh mailboxes and epoch, its own
// fault plan and tracer from opts, per-run deadlines. cfg may change
// freely between runs (algorithm, distribution, message sizes) as long
// as it targets the session's machine.
//
// Run is safe for concurrent use: a session executes one run at a time,
// and concurrent callers queue in arrival order (the daemon multiplexes
// concurrent requests onto one shared mesh exactly this way). Stats may
// be read concurrently without waiting for the queue to drain.
func (s *Session) Run(cfg Config, opts RunOptions) (*Result, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("stpbcast: Run on closed session")
	}
	s.mu.Unlock()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return s.runLocked(cfg, opts)
}

// runLocked executes one validated, admitted broadcast. runMu must be
// held; it dispatches to the engine and folds the outcome into the
// session stats.
func (s *Session) runLocked(cfg Config, opts RunOptions) (*Result, error) {
	var res *Result
	var sent int64
	var err error
	if s.engine == EngineSim {
		res, sent, err = runSim(s.m, cfg, opts)
	} else {
		res, sent, err = s.runReal(cfg, opts)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Runs++
	if err != nil {
		s.stats.Failures++
		return nil, err
	}
	s.stats.Bytes += sent
	return res, nil
}

// Future is the handle of a broadcast submitted with Session.RunAsync:
// a single-assignment (Result, error) pair resolved when the run
// completes. All methods are safe for concurrent use by any number of
// goroutines.
type Future struct {
	done chan struct{}
	res  *Result
	err  error
}

// Wait blocks until the run completes and returns its outcome. It may
// be called any number of times; every call returns the same pair.
func (f *Future) Wait() (*Result, error) {
	<-f.done
	return f.res, f.err
}

// Done returns a channel that is closed when the run has completed and
// Wait will no longer block — for select loops multiplexing several
// in-flight broadcasts.
func (f *Future) Done() <-chan struct{} { return f.done }

// RunAsync submits a broadcast and returns immediately with a Future
// resolving to the run's outcome. It is the pipelined form of Run: the
// caller can keep preparing (or submitting) the next broadcast while
// this one executes, and a warm engine drains the submissions back to
// back without a client round trip between them. On the TCP engine each
// run is epoch-tagged on the wire, so a late frame from a finished run
// can never bleed into a successor executing right behind it — overlap
// is safe all the way down to the sockets.
//
// Submissions from one goroutine start in submission order relative to
// each other only approximately (they queue on the session's run lock);
// runs never execute concurrently. A Future is resolved exactly once;
// an admitted run completes even if Close is called while it is queued
// or in flight.
func (s *Session) RunAsync(cfg Config, opts RunOptions) (*Future, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("stpbcast: RunAsync on closed session")
	}
	s.pending.Add(1)
	s.mu.Unlock()
	f := &Future{done: make(chan struct{})}
	go func() {
		defer s.pending.Done()
		s.runMu.Lock()
		defer s.runMu.Unlock()
		f.res, f.err = s.runLocked(cfg, opts)
		close(f.done)
	}()
	return f, nil
}

// Run executes one broadcast on the chosen engine: it is the unified
// one-shot entrypoint (open-run-close over a Session) that the
// deprecated Simulate*/RunLive*/RunTCP* variants wrap. For many
// broadcasts back to back, Open a Session instead and amortize the
// engine setup.
func Run(m *Machine, engine Engine, cfg Config, opts RunOptions) (*Result, error) {
	// Validate before standing up the engine, so a bad config never pays
	// (or leaks) a TCP mesh.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := cfg.spec(m); err != nil {
		return nil, err
	}
	s, err := Open(m, engine, SessionOptions{
		Context:      opts.Context,
		DialAttempts: opts.DialAttempts,
		DialBackoff:  opts.DialBackoff,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(cfg, opts)
}

// Result is the outcome of one broadcast through the unified Run API.
// The simulator fields (Params through NodeLoad) are populated only
// under EngineSim; Bundles and Faults only under the real-byte engines.
type Result struct {
	// Elapsed is the broadcast duration: simulated makespan under
	// EngineSim, wall clock otherwise.
	Elapsed time.Duration
	// Params are the paper's characteristic parameters of the run
	// (EngineSim only).
	Params Params
	// ActiveProfile is the number of processors communicating in each
	// algorithm iteration (EngineSim only).
	ActiveProfile []int
	// HotLinks are the ten busiest directed links of the run, most
	// loaded first (EngineSim only).
	HotLinks []LinkStats
	// NodeLoad is, per physical node, the occupancy of its busiest
	// outgoing link (EngineSim only; input for viz.Heatmap).
	NodeLoad []time.Duration
	// Bundles holds, per rank, the received original messages keyed by
	// origin rank (real-byte engines only). The combining collectives
	// (Reduce, AllReduce) deliver a single entry keyed by ReducedOrigin;
	// a Reduce leaves non-root ranks with an empty map.
	Bundles []map[int][]byte
	// Faults lists the faults injected during the run, when
	// RunOptions.Faults was set.
	Faults []FaultEvent
	// Trace echoes RunOptions.Trace when tracing was requested.
	Trace *TraceRecorder
}

// checkAlgorithmCollective rejects an algorithm whose collective tag
// does not match the config's collective — the guard behind
// RunOptions.Algorithm (named algorithms are already collective-checked
// by resolveAlgorithm's ByNameFor).
func checkAlgorithmCollective(alg Algorithm, coll Collective) error {
	if got := core.CollectiveOf(alg); got != coll {
		return fmt.Errorf("stpbcast: algorithm %s implements %s, but Config.Collective is %s", alg.Name(), got, coll)
	}
	return nil
}

// runSim executes one simulated collective. The simulator is
// deterministic, so a session adds no warm state — each run builds a
// fresh network, keeping results identical to the one-shot path.
func runSim(m *Machine, cfg Config, opts RunOptions) (*Result, int64, error) {
	if opts.Faults != nil {
		return nil, 0, errors.New("stpbcast: fault injection requires a real-byte engine (EngineLive or EngineTCP)")
	}
	spec, err := cfg.spec(m)
	if err != nil {
		return nil, 0, err
	}
	coll := cfg.collective()
	alg := opts.Algorithm
	if alg == nil {
		alg, err = resolveAlgorithm(m, cfg, spec)
		if err != nil {
			return nil, 0, err
		}
	}
	if err := checkAlgorithmCollective(alg, coll); err != nil {
		return nil, 0, err
	}
	nw, err := m.NewNetwork()
	if err != nil {
		return nil, 0, err
	}
	// The simulator prices message lengths only, so sources enter with
	// length-only parts — no payload buffers are allocated.
	msgLens := make(map[int]int, len(spec.Sources))
	for _, src := range spec.Sources {
		msgLens[src] = msgLenFor(cfg, src)
	}
	sopts := sim.Options{}
	if opts.Trace != nil {
		sopts.Tracer = opts.Trace
	}
	res, err := sim.Run(nw, func(pr *sim.Proc) {
		var mine comm.Message
		if coll == core.Broadcast {
			mine = core.InitialMessageLen(spec, pr.Rank(), msgLens[pr.Rank()])
		} else {
			// Non-broadcast collectives run uniform lengths (Validate
			// rejects MsgBytesFor for them).
			mine = core.InitialLenFor(coll, spec, pr.Rank(), cfg.MsgBytes)
		}
		alg.Run(pr, spec, mine)
	}, sopts)
	if err != nil {
		return nil, 0, err
	}
	loads := nw.NodeLoad()
	nodeLoad := make([]time.Duration, len(loads))
	for i, v := range loads {
		nodeLoad[i] = v.Duration()
	}
	var sent int64
	for i := range res.Procs {
		sent += res.Procs[i].SendBytes
	}
	return &Result{
		Elapsed:       res.Elapsed.Duration(),
		Params:        metrics.FromResult(res),
		ActiveProfile: metrics.ActiveProfile(res),
		HotLinks:      nw.HotLinks(10),
		NodeLoad:      nodeLoad,
		Trace:         opts.Trace,
	}, sent, nil
}

// runReal executes one broadcast over the session's warm real-byte
// engine: per-run spec/algorithm resolution, a per-run fault injector
// wrapping each rank's comm, and per-run tracer attachment.
func (s *Session) runReal(cfg Config, opts RunOptions) (*Result, int64, error) {
	if s.clu != nil {
		return s.runCluster(cfg, opts)
	}
	spec, err := cfg.spec(s.m)
	if err != nil {
		return nil, 0, err
	}
	coll := cfg.collective()
	alg := opts.Algorithm
	if alg == nil {
		alg, err = resolveAlgorithm(s.m, cfg, spec)
		if err != nil {
			return nil, 0, err
		}
	}
	if err := checkAlgorithmCollective(alg, coll); err != nil {
		return nil, 0, err
	}
	payload := opts.Payload
	if payload == nil {
		payload = defaultPayload(cfg, s.m.P())
	}
	var inj *faults.Injector
	if opts.Faults != nil {
		inj = faults.New(*opts.Faults)
		if opts.Trace != nil {
			inj.SetTracer(opts.Trace, time.Now())
		}
	}
	bundles := make([]map[int][]byte, s.m.P())
	body := func(c comm.Comm) {
		rank := c.Rank()
		if inj != nil {
			c = inj.Wrap(c)
		}
		mine := core.InitialFor(coll, spec, rank, payload)
		out := alg.Run(c, spec, mine)
		got := make(map[int][]byte, len(out.Parts))
		for _, part := range out.Parts {
			got[part.Origin] = part.Data
		}
		bundles[rank] = got
	}

	var elapsed time.Duration
	var sent int64
	switch s.engine {
	case EngineLive:
		r, err := s.liveM.Run(live.Options{
			Context:     opts.Context,
			RunTimeout:  opts.RunTimeout,
			RecvTimeout: opts.RecvTimeout,
			Tracer:      tracerOrNil(opts.Trace),
		}, func(pr *live.Proc) { body(pr) })
		if err != nil {
			return nil, 0, err
		}
		elapsed = r.Elapsed
		for i := range r.Procs {
			sent += r.Procs[i].SendBytes
		}
	case EngineTCP:
		r, err := s.tcpM.Run(tcp.Options{
			Context:        opts.Context,
			RunTimeout:     opts.RunTimeout,
			RecvTimeout:    opts.RecvTimeout,
			FlushThreshold: opts.FlushThreshold,
			Ports:          opts.Ports,
			Tracer:         tracerOrNil(opts.Trace),
		}, func(pr *tcp.Proc) { body(pr) })
		if err != nil {
			return nil, 0, err
		}
		elapsed = r.Elapsed
		for i := range r.Procs {
			sent += r.Procs[i].SendBytes
		}
	default:
		return nil, 0, fmt.Errorf("stpbcast: unknown engine %v", s.engine)
	}
	res := &Result{Elapsed: elapsed, Bundles: bundles, Trace: opts.Trace}
	if inj != nil {
		res.Faults = inj.Events()
	}
	return res, sent, nil
}

// runCluster executes one broadcast across the session's worker
// processes: it resolves the config to an explicit run spec (registry
// algorithm name, explicit source ranks) and ships that to the
// coordinator — Go values cannot cross the process boundary, which is
// also why the options checked below must be unset.
func (s *Session) runCluster(cfg Config, opts RunOptions) (*Result, int64, error) {
	if coll := cfg.collective(); !coll.Caps().Cluster {
		return nil, 0, fmt.Errorf("stpbcast: cluster sessions support Broadcast only, not %s (workers verify full broadcasts)", coll)
	}
	switch {
	case opts.Algorithm != nil:
		return nil, 0, errors.New("stpbcast: cluster runs cannot use RunOptions.Algorithm (an explicit Algorithm value cannot cross process boundaries); name a registry algorithm in Config.Algorithm")
	case opts.Payload != nil:
		return nil, 0, errors.New("stpbcast: cluster runs cannot use RunOptions.Payload; workers synthesize the default deterministic payload")
	case opts.Faults != nil:
		return nil, 0, errors.New("stpbcast: cluster runs do not support fault injection")
	case opts.Trace != nil:
		return nil, 0, errors.New("stpbcast: cluster runs do not support tracing")
	case opts.Context != nil:
		return nil, 0, errors.New("stpbcast: cluster runs do not support Context; bound them with RunTimeout")
	case opts.FlushThreshold != 0:
		return nil, 0, errors.New("stpbcast: cluster runs do not support FlushThreshold")
	case cfg.MsgBytesFor != nil:
		return nil, 0, errors.New("stpbcast: cluster runs do not support Config.MsgBytesFor; use a uniform MsgBytes")
	case cfg.MsgBytes <= 0:
		return nil, 0, fmt.Errorf("stpbcast: cluster runs need a positive Config.MsgBytes, got %d", cfg.MsgBytes)
	}
	spec, err := cfg.spec(s.m)
	if err != nil {
		return nil, 0, err
	}
	alg, err := resolveAlgorithm(s.m, cfg, spec)
	if err != nil {
		return nil, 0, err
	}
	res, err := s.clu.Run(cluster.RunSpec{
		Rows:          spec.Rows,
		Cols:          spec.Cols,
		Sources:       spec.Sources,
		RowMajor:      cfg.RowMajor,
		Algorithm:     alg.Name(),
		MsgBytes:      cfg.MsgBytes,
		RecvTimeoutNs: int64(opts.RecvTimeout),
		RunTimeoutNs:  int64(opts.RunTimeout),
		Ports:         opts.Ports,
	})
	if err != nil {
		return nil, 0, err
	}
	var sent int64
	for i := range res.Procs {
		sent += res.Procs[i].SendBytes
	}
	// Bundles stay nil: each worker verified its own ranks byte-exactly;
	// shipping payload bytes over the control plane would defeat the
	// point of distributing the mesh.
	return &Result{Elapsed: res.Elapsed}, sent, nil
}

// tracerOrNil avoids the classic non-nil interface holding a nil
// pointer: a nil *TraceRecorder must reach the engines as a nil Tracer.
func tracerOrNil(rec *TraceRecorder) obsTracer {
	if rec == nil {
		return nil
	}
	return rec
}

// msgLenFor resolves one source's message length under cfg.
func msgLenFor(cfg Config, rank int) int {
	if cfg.MsgBytesFor != nil {
		if n := cfg.MsgBytesFor(rank); n > 0 {
			return n
		}
		return 0
	}
	return cfg.MsgBytes
}

// defaultPayload synthesizes deterministic per-source payloads when
// RunOptions.Payload is nil: msgLenFor bytes of the source's rank value.
// For the chunked collectives (Scatter, AllToAll) the payload carries p
// chunks of MsgBytes bytes each, chunk d filled with byte(rank + 131·d)
// so every (source, destination) pair is distinguishable.
func defaultPayload(cfg Config, p int) func(rank int) []byte {
	if cfg.collective().Caps().Chunked {
		return func(rank int) []byte {
			buf := make([]byte, p*cfg.MsgBytes)
			for d := 0; d < p; d++ {
				chunk := buf[d*cfg.MsgBytes : (d+1)*cfg.MsgBytes]
				for i := range chunk {
					chunk[i] = byte(rank + 131*d)
				}
			}
			return buf
		}
	}
	return func(rank int) []byte {
		buf := make([]byte, msgLenFor(cfg, rank))
		for i := range buf {
			buf[i] = byte(rank)
		}
		return buf
	}
}
