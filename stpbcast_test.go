package stpbcast_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	stpbcast "repro"
	"repro/internal/core"
)

func TestSimulateQuickstart(t *testing.T) {
	m := stpbcast.NewParagon(10, 10)
	res, err := stpbcast.Simulate(m, stpbcast.Config{
		Algorithm:    "Br_xy_source",
		Distribution: "E",
		Sources:      30,
		MsgBytes:     4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no simulated time")
	}
	if res.Params.SendRec == 0 {
		t.Fatal("no operations recorded")
	}
	if len(res.ActiveProfile) == 0 {
		t.Fatal("no iteration profile")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "Dr", Sources: 12, MsgBytes: 1024}
	a, err := stpbcast.Simulate(stpbcast.NewT3D(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stpbcast.Simulate(stpbcast.NewT3D(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("non-deterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

func TestSimulateAllAlgorithmsByName(t *testing.T) {
	for _, alg := range stpbcast.Algorithms() {
		m := stpbcast.NewParagon(4, 4)
		res, err := stpbcast.Simulate(m, stpbcast.Config{
			Algorithm:    alg.Name(),
			Distribution: "Sq",
			Sources:      6,
			MsgBytes:     256,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%s: no time", alg.Name())
		}
	}
}

func TestSimulateExplicitSources(t *testing.T) {
	m := stpbcast.NewParagon(4, 4)
	res, err := stpbcast.Simulate(m, stpbcast.Config{
		Algorithm:   "2-Step",
		SourceRanks: []int{3, 9, 12},
		MsgBytes:    128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestSourceRanksValidation(t *testing.T) {
	m := stpbcast.NewParagon(4, 4)
	// Unsorted ranks are accepted (a sorted copy is taken) and the
	// caller's slice is left untouched.
	ranks := []int{12, 3, 9}
	res, err := stpbcast.Simulate(m, stpbcast.Config{
		Algorithm: "Br_Lin", SourceRanks: ranks, MsgBytes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no simulated time")
	}
	if ranks[0] != 12 || ranks[1] != 3 || ranks[2] != 9 {
		t.Fatalf("caller slice mutated: %v", ranks)
	}
	// Duplicates and out-of-range ranks are errors, not panics.
	for _, bad := range [][]int{
		{3, 3, 9},    // duplicate
		{3, 16},      // one past the last rank
		{-1, 3},      // negative
		{3, 99},      // far out of range
		{5, 9, 5, 1}, // duplicate after sorting
	} {
		if _, err := stpbcast.Simulate(m, stpbcast.Config{
			Algorithm: "Br_Lin", SourceRanks: bad, MsgBytes: 128,
		}); err == nil {
			t.Errorf("SourceRanks %v accepted", bad)
		}
	}
}

func TestAutoAlgorithm(t *testing.T) {
	m := stpbcast.NewParagon(6, 6)
	cfg := stpbcast.Config{
		Algorithm: stpbcast.AutoAlgorithm, Distribution: "Cr", Sources: 9, MsgBytes: 2048,
	}
	auto, err := stpbcast.Simulate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := stpbcast.Plan(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Algorithm == "" || dec.Algorithm == stpbcast.AutoAlgorithm {
		t.Fatalf("planner chose %q", dec.Algorithm)
	}
	// Auto must run exactly the planned algorithm.
	fixed, err := stpbcast.Simulate(m, stpbcast.Config{
		Algorithm: dec.Algorithm, Distribution: "Cr", Sources: 9, MsgBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Elapsed != fixed.Elapsed {
		t.Fatalf("Auto ran %v, planned algorithm %s runs %v", auto.Elapsed, dec.Algorithm, fixed.Elapsed)
	}
	// Identical inputs produce the identical plan (warm cache included).
	again, err := stpbcast.Plan(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Algorithm != dec.Algorithm {
		t.Fatalf("plan not stable: %s then %s", dec.Algorithm, again.Algorithm)
	}
	// The Auto choice never loses to a canonical fixed policy.
	repos, err := stpbcast.Simulate(m, stpbcast.Config{
		Algorithm: "Repos_xy_source", Distribution: "Cr", Sources: 9, MsgBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Elapsed > repos.Elapsed {
		t.Fatalf("Auto (%v) slower than Repos_xy_source (%v)", auto.Elapsed, repos.Elapsed)
	}
}

func TestAutoAlgorithmLive(t *testing.T) {
	m := stpbcast.NewParagon(3, 3)
	cfg := stpbcast.Config{Algorithm: stpbcast.AutoAlgorithm, Distribution: "E", Sources: 3, MsgBytes: 32}
	res, err := stpbcast.RunLive(m, cfg, func(rank int) []byte {
		return []byte(fmt.Sprintf("auto-%02d", rank))
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, got := range res.Bundles {
		if len(got) != 3 {
			t.Fatalf("rank %d holds %d messages, want 3", rank, len(got))
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	m := stpbcast.NewParagon(4, 4)
	cases := []stpbcast.Config{
		{Algorithm: "nope", Distribution: "E", Sources: 2, MsgBytes: 8},
		{Algorithm: "Br_Lin", Distribution: "nope", Sources: 2, MsgBytes: 8},
		{Algorithm: "Br_Lin", Distribution: "E", Sources: 0, MsgBytes: 8},
		{Algorithm: "Br_Lin", Distribution: "E", Sources: 99, MsgBytes: 8},
		{Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: -1},
		{Algorithm: "Br_Lin", SourceRanks: []int{77}, MsgBytes: 8},
	}
	for i, cfg := range cases {
		if _, err := stpbcast.Simulate(m, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunLiveDeliversPayloads(t *testing.T) {
	m := stpbcast.NewParagon(4, 5)
	cfg := stpbcast.Config{Algorithm: "Repos_xy_source", Distribution: "Cr", Sources: 9, MsgBytes: 0}
	res, err := stpbcast.RunLive(m, cfg, func(rank int) []byte {
		return []byte(fmt.Sprintf("payload-from-%02d", rank))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bundles) != 20 {
		t.Fatalf("bundles for %d ranks", len(res.Bundles))
	}
	for rank, got := range res.Bundles {
		if len(got) != 9 {
			t.Fatalf("rank %d holds %d messages, want 9", rank, len(got))
		}
		for origin, data := range got {
			want := []byte(fmt.Sprintf("payload-from-%02d", origin))
			if !bytes.Equal(data, want) {
				t.Fatalf("rank %d origin %d payload %q", rank, origin, data)
			}
		}
	}
}

func TestSimulateTraced(t *testing.T) {
	m := stpbcast.NewParagon(4, 4)
	res, err := stpbcast.SimulateTraced(m, stpbcast.Config{
		Algorithm: "Br_Lin", Distribution: "E", Sources: 4, MsgBytes: 64,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Count("send") == 0 || res.Trace.Count("recv") == 0 {
		t.Fatalf("trace empty: %v", res.Trace.Summary())
	}
}

func TestRegistriesExposed(t *testing.T) {
	if len(stpbcast.Algorithms()) < 12 {
		t.Errorf("only %d algorithms", len(stpbcast.Algorithms()))
	}
	if len(stpbcast.Distributions()) != 8 {
		t.Errorf("%d distributions", len(stpbcast.Distributions()))
	}
	if len(stpbcast.Experiments()) < 19 {
		t.Errorf("only %d experiments", len(stpbcast.Experiments()))
	}
	if _, err := stpbcast.AlgorithmByName("Br_Lin"); err != nil {
		t.Error(err)
	}
	if _, err := stpbcast.DistributionByName("Dl"); err != nil {
		t.Error(err)
	}
	if _, err := stpbcast.ExperimentByID("fig7"); err != nil {
		t.Error(err)
	}
}

func TestRowMajorAblationDiffers(t *testing.T) {
	snake, err := stpbcast.Simulate(stpbcast.NewParagon(8, 8), stpbcast.Config{
		Algorithm: "Br_Lin", Distribution: "C", Sources: 16, MsgBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := stpbcast.Simulate(stpbcast.NewParagon(8, 8), stpbcast.Config{
		Algorithm: "Br_Lin", Distribution: "C", Sources: 16, MsgBytes: 2048, RowMajor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snake.Elapsed == rm.Elapsed {
		t.Error("indexing ablation had no effect (suspicious)")
	}
}

func TestVariableMessageLengths(t *testing.T) {
	m := stpbcast.NewParagon(6, 6)
	uniform, err := stpbcast.Simulate(m, stpbcast.Config{
		Algorithm: "Br_Lin", Distribution: "Dr", Sources: 6, MsgBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := stpbcast.Simulate(m, stpbcast.Config{
		Algorithm: "Br_Lin", Distribution: "Dr", Sources: 6, MsgBytes: 4096,
		MsgBytesFor: func(rank int) int {
			if rank%2 == 0 {
				return 6144
			}
			return 2048
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Elapsed == uniform.Elapsed {
		t.Error("per-source lengths had no effect (suspicious)")
	}
	// Same total volume: within ±35% (the paper's insignificance claim).
	ratio := float64(skewed.Elapsed) / float64(uniform.Elapsed)
	if ratio > 1.35 || ratio < 0.65 {
		t.Errorf("skewed/uniform ratio %.2f outside ±35%%", ratio)
	}
}

func TestHypercubeMachine(t *testing.T) {
	m := stpbcast.NewHypercube(5)
	res, err := stpbcast.Simulate(m, stpbcast.Config{
		Algorithm: "Br_Lin", Distribution: "E", Sources: 8, MsgBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestRunTCPDeliversPayloads(t *testing.T) {
	m := stpbcast.NewParagon(3, 4)
	cfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "Dr", Sources: 4}
	res, err := stpbcast.RunTCP(m, cfg, func(rank int) []byte {
		return []byte(fmt.Sprintf("wire-%02d", rank))
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, got := range res.Bundles {
		if len(got) != 4 {
			t.Fatalf("rank %d holds %d messages", rank, len(got))
		}
		for origin, data := range got {
			if string(data) != fmt.Sprintf("wire-%02d", origin) {
				t.Fatalf("rank %d origin %d payload %q", rank, origin, data)
			}
		}
	}
}

func TestSimulateWithCustomAlgorithm(t *testing.T) {
	m := stpbcast.NewT3D(64)
	x, y, z := 4, 4, 4
	alg := core.BrDims([]int{x, y, z}, []int{2, 1, 0})
	res, err := stpbcast.SimulateWith(m, alg, stpbcast.Config{
		Distribution: "E", Sources: 16, MsgBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no simulated time")
	}
	wrapped := core.WithDiscovery(core.BrLin())
	if _, err := stpbcast.SimulateWith(m, wrapped, stpbcast.Config{
		Distribution: "Sq", Sources: 9, MsgBytes: 256,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRunOptsGracefulFaultsKeepBundlesIntact drives the public chaos
// API on both real-byte engines: a duplicate+delay plan must degrade
// gracefully — delivered bundles identical to a fault-free run — with
// the injected events reported on the result.
func TestRunOptsGracefulFaultsKeepBundlesIntact(t *testing.T) {
	m := stpbcast.NewParagon(3, 4)
	cfg := stpbcast.Config{Algorithm: "Br_xy_source", Distribution: "Cr", Sources: 5, MsgBytes: 0}
	payload := func(rank int) []byte { return []byte(fmt.Sprintf("chaos-%02d", rank)) }
	opts := stpbcast.RunOptions{
		RecvTimeout: 30 * time.Second,
		Faults:      &stpbcast.FaultPlan{Seed: 9, Duplicate: 0.25, DelayProb: 0.25, MaxDelay: time.Millisecond},
	}
	for name, run := range map[string]func() (*stpbcast.LiveResult, error){
		"live": func() (*stpbcast.LiveResult, error) { return stpbcast.RunLiveOpts(m, cfg, payload, opts) },
		"tcp":  func() (*stpbcast.LiveResult, error) { return stpbcast.RunTCPOpts(m, cfg, payload, opts) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: graceful plan aborted: %v", name, err)
		}
		if len(res.Faults) == 0 {
			t.Fatalf("%s: no faults injected; plan was inert", name)
		}
		for rank, got := range res.Bundles {
			if len(got) != 5 {
				t.Fatalf("%s: rank %d holds %d messages, want 5", name, rank, len(got))
			}
			for origin, data := range got {
				if want := fmt.Sprintf("chaos-%02d", origin); string(data) != want {
					t.Fatalf("%s: rank %d origin %d payload %q", name, rank, origin, data)
				}
			}
		}
	}
}

// TestRunOptsKillReportsRootCause: a killed rank must surface through
// the public API as an error naming the rank, on both engines.
func TestRunOptsKillReportsRootCause(t *testing.T) {
	m := stpbcast.NewParagon(3, 4)
	cfg := stpbcast.Config{Algorithm: "Br_xy_source", Distribution: "Cr", Sources: 5, MsgBytes: 0}
	payload := func(rank int) []byte { return []byte("x") }
	opts := stpbcast.RunOptions{
		RecvTimeout: 2 * time.Second,
		Faults:      &stpbcast.FaultPlan{Kills: []stpbcast.FaultKill{{Rank: 3, Op: 1}}},
	}
	for name, run := range map[string]func() (*stpbcast.LiveResult, error){
		"live": func() (*stpbcast.LiveResult, error) { return stpbcast.RunLiveOpts(m, cfg, payload, opts) },
		"tcp":  func() (*stpbcast.LiveResult, error) { return stpbcast.RunTCPOpts(m, cfg, payload, opts) },
	} {
		_, err := run()
		if err == nil {
			t.Fatalf("%s: killed rank did not fail the run", name)
		}
		if !strings.Contains(err.Error(), "rank 3 killed") {
			t.Fatalf("%s: kill diagnostic lost: %v", name, err)
		}
	}
}

// TestRunOptsRecvDeadlineConvertsHang: total message loss plus a recv
// deadline must return a diagnostic instead of hanging, via the facade.
func TestRunOptsRecvDeadlineConvertsHang(t *testing.T) {
	m := stpbcast.NewParagon(2, 2)
	cfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 2, MsgBytes: 0}
	payload := func(rank int) []byte { return []byte("y") }
	opts := stpbcast.RunOptions{
		RecvTimeout: 200 * time.Millisecond,
		Faults:      &stpbcast.FaultPlan{Seed: 1, Drop: 1.0},
	}
	start := time.Now()
	_, err := stpbcast.RunLiveOpts(m, cfg, payload, opts)
	if err == nil {
		t.Fatal("total message loss did not fail the run")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("deadline diagnostic lost: %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("abort took %v", d)
	}
}
