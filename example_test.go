package stpbcast_test

import (
	"fmt"

	stpbcast "repro"
)

// ExampleSimulate runs one s-to-p broadcast on the simulated 10×10
// Paragon and reports structural facts of the run (which are exact and
// deterministic; timings are too, but depend on the cost calibration).
func ExampleSimulate() {
	m := stpbcast.NewParagon(10, 10)
	res, err := stpbcast.Simulate(m, stpbcast.Config{
		Algorithm:    "Br_xy_source",
		Distribution: "E",
		Sources:      30,
		MsgBytes:     4096,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("iterations: %d\n", len(res.ActiveProfile))
	fmt.Printf("congestion: %d\n", res.Params.Congestion)
	fmt.Printf("all active at peak: %v\n", maxOf(res.ActiveProfile) == m.P())
	// Output:
	// iterations: 8
	// congestion: 3
	// all active at peak: true
}

// ExampleRunLive moves real bytes through the goroutine engine and shows
// that the far corner processor received every source's payload.
func ExampleRunLive() {
	m := stpbcast.NewParagon(4, 4)
	res, err := stpbcast.RunLive(m, stpbcast.Config{
		Algorithm:    "Br_Lin",
		Distribution: "Dr",
		Sources:      4,
	}, func(rank int) []byte {
		return []byte(fmt.Sprintf("msg-%d", rank))
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	corner := res.Bundles[15]
	fmt.Printf("messages at corner: %d\n", len(corner))
	fmt.Printf("first source's payload: %s\n", corner[0])
	// Output:
	// messages at corner: 4
	// first source's payload: msg-0
}

// ExampleDistributionByName draws a distribution the way the paper's
// Figure 1 does.
func ExampleDistributionByName() {
	d, err := stpbcast.DistributionByName("Dr")
	if err != nil {
		fmt.Println(err)
		return
	}
	sources, err := d.Sources(4, 4, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(sources)
	// Output:
	// [0 5 10 15]
}

func maxOf(v []int) int {
	m := 0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
