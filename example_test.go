package stpbcast_test

import (
	"fmt"

	stpbcast "repro"
)

// ExampleSimulate runs one s-to-p broadcast on the simulated 10×10
// Paragon and reports structural facts of the run (which are exact and
// deterministic; timings are too, but depend on the cost calibration).
func ExampleSimulate() {
	m := stpbcast.NewParagon(10, 10)
	res, err := stpbcast.Simulate(m, stpbcast.Config{
		Algorithm:    "Br_xy_source",
		Distribution: "E",
		Sources:      30,
		MsgBytes:     4096,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("iterations: %d\n", len(res.ActiveProfile))
	fmt.Printf("congestion: %d\n", res.Params.Congestion)
	fmt.Printf("all active at peak: %v\n", maxOf(res.ActiveProfile) == m.P())
	// Output:
	// iterations: 8
	// congestion: 3
	// all active at peak: true
}

// ExampleRunLive moves real bytes through the goroutine engine and shows
// that the far corner processor received every source's payload.
func ExampleRunLive() {
	m := stpbcast.NewParagon(4, 4)
	res, err := stpbcast.RunLive(m, stpbcast.Config{
		Algorithm:    "Br_Lin",
		Distribution: "Dr",
		Sources:      4,
	}, func(rank int) []byte {
		return []byte(fmt.Sprintf("msg-%d", rank))
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	corner := res.Bundles[15]
	fmt.Printf("messages at corner: %d\n", len(corner))
	fmt.Printf("first source's payload: %s\n", corner[0])
	// Output:
	// messages at corner: 4
	// first source's payload: msg-0
}

// ExampleDistributionByName draws a distribution the way the paper's
// Figure 1 does.
func ExampleDistributionByName() {
	d, err := stpbcast.DistributionByName("Dr")
	if err != nil {
		fmt.Println(err)
		return
	}
	sources, err := d.Sources(4, 4, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(sources)
	// Output:
	// [0 5 10 15]
}

// ExampleNewTraceRecorder records the unified event stream of a
// simulated broadcast and inspects it through the public facade only:
// the recorder's Events, per-kind counts and drop accounting.
func ExampleNewTraceRecorder() {
	m := stpbcast.NewParagon(4, 4)
	rec := stpbcast.NewTraceRecorder(0) // 0 = unbounded retention
	res, err := stpbcast.Run(m, stpbcast.EngineSim, stpbcast.Config{
		Algorithm:    "Br_Lin",
		Distribution: "E",
		Sources:      4,
		MsgBytes:     256,
	}, stpbcast.RunOptions{Trace: rec})
	if err != nil {
		fmt.Println(err)
		return
	}
	var first stpbcast.TraceEvent = rec.Events[0]
	fmt.Printf("result echoes recorder: %v\n", res.Trace == rec)
	fmt.Printf("first event kind: %s\n", first.Kind)
	fmt.Printf("sends: %d recvs: %d\n", rec.Count("send"), rec.Count("recv"))
	fmt.Printf("dropped: %d\n", rec.Dropped())
	// Output:
	// result echoes recorder: true
	// first event kind: barrier
	// sends: 32 recvs: 32
	// dropped: 0
}

// ExampleOpen amortizes engine setup across back-to-back broadcasts: a
// Session stands the engine up once and every Run reuses it.
func ExampleOpen() {
	m := stpbcast.NewParagon(4, 4)
	s, err := stpbcast.Open(m, stpbcast.EngineLive, stpbcast.SessionOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "Dr", Sources: 4, MsgBytes: 32}
	for i := 0; i < 3; i++ {
		res, err := s.Run(cfg, stpbcast.RunOptions{})
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("run %d delivered %d bundles\n", i, len(res.Bundles))
	}
	stats, _ := s.Close()
	fmt.Printf("runs: %d failures: %d\n", stats.Runs, stats.Failures)
	// Output:
	// run 0 delivered 16 bundles
	// run 1 delivered 16 bundles
	// run 2 delivered 16 bundles
	// runs: 3 failures: 0
}

func maxOf(v []int) int {
	m := 0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
