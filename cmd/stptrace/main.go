// Command stptrace runs one s-to-p broadcast and reports its event
// trace. The run executes on any of the three engines — the
// deterministic simulator, the live goroutine runtime, or the loopback
// TCP transport — and the unified event stream (send/recv/wait/barrier/
// combine plus injected faults) can be dumped as JSON lines or exported
// in Chrome trace-event format for Perfetto (ui.perfetto.dev).
//
// Usage:
//
//	stptrace -machine paragon -rows 10 -cols 10 -alg Br_xy_source -dist E -s 30 -bytes 4096
//	stptrace -engine live -alg Br_Lin -dist Sq -s 16 -chrome trace.json
//	stptrace -engine tcp -fault-drop 0.05 -fault-seed 7 -json events.jsonl
//	stptrace -validate trace.json events.jsonl
//
// For the simulator, timestamps are virtual nanoseconds of the machine's
// cost model; for live and tcp they are wall-clock nanoseconds since the
// run started. -validate checks previously written files instead of
// running: .jsonl files against the event schema, anything else against
// the Chrome trace schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	stpbcast "repro"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	machineName := flag.String("machine", "paragon", "paragon | paragon-mpi | t3d | t3d-random")
	rows := flag.Int("rows", 10, "mesh rows (paragon)")
	cols := flag.Int("cols", 10, "mesh columns (paragon)")
	p := flag.Int("p", 128, "processors (t3d)")
	seed := flag.Int64("seed", 1, "placement seed (t3d-random)")
	alg := flag.String("alg", "Br_xy_source", "algorithm name")
	distName := flag.String("dist", "E", "source distribution name")
	s := flag.Int("s", 30, "number of sources")
	msgBytes := flag.Int("bytes", 4096, "message length per source")
	engine := flag.String("engine", "sim", "execution engine: sim | live | tcp")
	jsonOut := flag.String("json", "", "write the event trace as JSON lines to this file")
	chromeOut := flag.String("chrome", "", "write a Chrome trace-event file (Perfetto-loadable) to this file")
	capEvents := flag.Int("cap", 0, "retain at most N events (0 = all); overflow is counted, not kept")
	iters := flag.Bool("iters", false, "print the per-iteration traffic series")
	heat := flag.Bool("heat", false, "render an ASCII heatmap of per-node busiest-link occupancy (sim, mesh machines)")
	hot := flag.Int("hot", 0, "print the N busiest directed links (sim)")
	validate := flag.Bool("validate", false, "validate trace files named as arguments instead of running")
	faultDrop := flag.Float64("fault-drop", 0, "per-message drop probability (live/tcp)")
	faultDup := flag.Float64("fault-dup", 0, "per-message duplicate probability (live/tcp)")
	faultDelay := flag.Float64("fault-delay", 0, "per-message delay probability (live/tcp)")
	faultSeed := flag.Int64("fault-seed", 1, "fault schedule seed")
	timeout := flag.Duration("timeout", 0, "receive timeout for live/tcp runs (default 5s when faults are active)")
	flag.Parse()

	if *validate {
		validateFiles(flag.Args())
		return
	}

	var m *stpbcast.Machine
	switch *machineName {
	case "paragon":
		m = stpbcast.NewParagon(*rows, *cols)
	case "paragon-mpi":
		m = stpbcast.NewParagonMPI(*rows, *cols)
	case "t3d":
		m = stpbcast.NewT3D(*p)
	case "t3d-random":
		m = stpbcast.NewT3DRandom(*p, *seed)
	default:
		fatal(fmt.Errorf("unknown machine %q", *machineName))
	}

	cfg := stpbcast.Config{Algorithm: *alg, Distribution: *distName, Sources: *s, MsgBytes: *msgBytes}
	faulty := *faultDrop > 0 || *faultDup > 0 || *faultDelay > 0

	rec := trace.NewRecorder(*capEvents)
	fmt.Printf("machine:   %s (%d processors, logical %d×%d)\n", m.Name, m.P(), m.Rows, m.Cols)
	fmt.Printf("broadcast: %s, %s(%d), L=%d bytes, engine=%s\n", *alg, *distName, *s, *msgBytes, *engine)

	switch *engine {
	case "sim":
		if faulty {
			fatal(fmt.Errorf("fault injection needs a real engine; use -engine live or tcp"))
		}
		runSim(m, cfg, rec, *heat, *hot)
	case "live", "tcp":
		if *heat || *hot > 0 {
			fatal(fmt.Errorf("-heat and -hot need the cost-model network; use -engine sim"))
		}
		runReal(m, cfg, rec, *engine, faulty, *faultDrop, *faultDup, *faultDelay, *faultSeed, *timeout)
	default:
		fatal(fmt.Errorf("unknown engine %q (want sim, live or tcp)", *engine))
	}

	fmt.Printf("events:    %s\n", rec.Summary())
	if *iters {
		printIterSeries(rec)
	}
	if *jsonOut != "" {
		writeFile(*jsonOut, func(f *os.File) error { return rec.WriteJSON(f) })
		fmt.Printf("trace:     %d events written to %s", len(rec.Events), *jsonOut)
		if n := rec.Dropped(); n > 0 {
			fmt.Printf(" (%d more dropped past -cap %d)", n, *capEvents)
		}
		fmt.Println()
	}
	if *chromeOut != "" {
		writeFile(*chromeOut, func(f *os.File) error { return rec.WriteChrome(f, *engine) })
		fmt.Printf("chrome:    trace written to %s — load it at ui.perfetto.dev\n", *chromeOut)
	}
}

// runSim executes on the discrete-event simulator and prints the paper's
// characteristic parameters alongside the trace summary.
func runSim(m *stpbcast.Machine, cfg stpbcast.Config, rec *trace.Recorder, heat bool, hot int) {
	res, err := stpbcast.SimulateInto(m, cfg, rec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("elapsed:   %.3f ms (simulated)\n", float64(res.Elapsed.Nanoseconds())/1e6)
	fmt.Printf("params:    congestion=%d wait=%d send/rec=%d av_msg_lgth=%.0fB av_act_proc=%.1f\n",
		res.Params.Congestion, res.Params.Wait, res.Params.SendRec, res.Params.AvgMsgLen, res.Params.AvgActive)
	fmt.Printf("active:    %s (processors communicating per iteration)\n", metrics.FormatProfile(res.ActiveProfile))
	if hot > 0 {
		fmt.Println("hottest links (node→direction, occupancy, transfers):")
		for _, h := range res.HotLinks {
			if hot == 0 {
				break
			}
			hot--
			fmt.Printf("  %-12v %10.3f ms %6d transfers\n", h.Link, h.Busy.Milliseconds(), h.Transfers)
		}
	}
	if heat {
		mesh, ok := m.Topo.(*topology.Mesh2D)
		if !ok {
			fmt.Println("heatmap: only available for mesh machines")
			return
		}
		loads := make([]network.Time, len(res.NodeLoad))
		for i, v := range res.NodeLoad {
			loads[i] = network.Time(v)
		}
		grid, err := viz.Heatmap(mesh, loads)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("per-node busiest-outgoing-link occupancy (' ' idle … '@' hottest):\n%s", grid)
	}
}

// runReal executes on the live or tcp engine with real payload bytes,
// optionally under a fault plan, recording the event stream into rec.
// The trace is kept (and later written) even when the run errors out, so
// a failing chaos run can still be inspected.
func runReal(m *stpbcast.Machine, cfg stpbcast.Config, rec *trace.Recorder, engine string,
	faulty bool, drop, dup, delay float64, seed int64, timeout time.Duration) {
	opts := stpbcast.RunOptions{Trace: rec, RecvTimeout: timeout}
	if faulty {
		opts.Faults = &stpbcast.FaultPlan{Seed: seed, Drop: drop, Duplicate: dup, DelayProb: delay}
		if opts.RecvTimeout == 0 {
			// Drops can hang a rank forever; convert that into an error.
			opts.RecvTimeout = 5 * time.Second
		}
	}
	payload := func(rank int) []byte {
		b := make([]byte, cfg.MsgBytes)
		for i := range b {
			b[i] = byte(rank + i)
		}
		return b
	}
	var res *stpbcast.LiveResult
	var err error
	if engine == "live" {
		res, err = stpbcast.RunLiveOpts(m, cfg, payload, opts)
	} else {
		res, err = stpbcast.RunTCPOpts(m, cfg, payload, opts)
	}
	if err != nil {
		// Report, but fall through: the partial trace is often the most
		// useful artifact of a failed run.
		fmt.Fprintln(os.Stderr, "stptrace: run failed:", err)
	} else {
		fmt.Printf("elapsed:   %.3f ms (wall clock)\n", float64(res.Elapsed.Nanoseconds())/1e6)
		if len(res.Faults) > 0 {
			fmt.Printf("faults:    %d injected, all absorbed\n", len(res.Faults))
		}
	}
}

// printIterSeries renders the per-iteration traffic series — the
// link-utilization view of the run over its native clock.
func printIterSeries(rec *trace.Recorder) {
	series := trace.IterSeries(rec.Events)
	if len(series) == 0 {
		fmt.Println("iters:     (no per-iteration events recorded)")
		return
	}
	fmt.Println("iters:     iter  sends  recvs  waits    bytes   MB/s")
	for _, it := range series {
		fmt.Printf("           %4d  %5d  %5d  %5d  %7d  %5.1f\n",
			it.Iter, it.Sends, it.Recvs, it.Waits, it.Bytes, it.Rate()/1e6)
	}
}

// validateFiles checks previously written trace files: .jsonl against the
// event schema, everything else against the Chrome trace-event schema.
// Any invalid file makes the command exit nonzero.
func validateFiles(files []string) {
	if len(files) == 0 {
		fatal(fmt.Errorf("-validate needs file arguments"))
	}
	failed := false
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Printf("%s: %v\n", name, err)
			failed = true
			continue
		}
		if strings.HasSuffix(name, ".jsonl") {
			n, err := trace.ValidateJSONL(data)
			if err != nil {
				fmt.Printf("%s: INVALID: %v\n", name, err)
				failed = true
				continue
			}
			fmt.Printf("%s: ok (%d events)\n", name, n)
		} else {
			st, err := trace.ValidateChrome(data)
			if err != nil {
				fmt.Printf("%s: INVALID: %v\n", name, err)
				failed = true
				continue
			}
			fmt.Printf("%s: ok (%d slices, %d instants, %d flows, %d counters, %d ranks)\n",
				name, st.Slices, st.Instants, st.Flows, st.Counters, st.Ranks)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeFile creates name and streams the trace into it via write.
func writeFile(name string, write func(*os.File) error) {
	f, err := os.Create(name)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stptrace:", err)
	os.Exit(1)
}
