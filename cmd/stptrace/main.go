// Command stptrace runs one s-to-p broadcast on a simulated machine and
// reports its timing, the paper's characteristic parameters, the
// active-processor growth profile, and (optionally) the full event trace
// as JSON lines.
//
// Usage:
//
//	stptrace -machine paragon -rows 10 -cols 10 -alg Br_xy_source -dist E -s 30 -bytes 4096
//	stptrace -machine t3d -p 128 -alg Br_Lin -dist Sq -s 40 -bytes 4096 -json events.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	stpbcast "repro"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/viz"
)

func main() {
	machineName := flag.String("machine", "paragon", "paragon | paragon-mpi | t3d | t3d-random")
	rows := flag.Int("rows", 10, "mesh rows (paragon)")
	cols := flag.Int("cols", 10, "mesh columns (paragon)")
	p := flag.Int("p", 128, "processors (t3d)")
	seed := flag.Int64("seed", 1, "placement seed (t3d-random)")
	alg := flag.String("alg", "Br_xy_source", "algorithm name")
	distName := flag.String("dist", "E", "source distribution name")
	s := flag.Int("s", 30, "number of sources")
	msgBytes := flag.Int("bytes", 4096, "message length per source")
	jsonOut := flag.String("json", "", "write the event trace as JSON lines to this file")
	heat := flag.Bool("heat", false, "render an ASCII link-load heatmap of the mesh (paragon machines)")
	hot := flag.Int("hot", 0, "print the N busiest directed links")
	flag.Parse()

	var m *stpbcast.Machine
	switch *machineName {
	case "paragon":
		m = stpbcast.NewParagon(*rows, *cols)
	case "paragon-mpi":
		m = stpbcast.NewParagonMPI(*rows, *cols)
	case "t3d":
		m = stpbcast.NewT3D(*p)
	case "t3d-random":
		m = stpbcast.NewT3DRandom(*p, *seed)
	default:
		fatal(fmt.Errorf("unknown machine %q", *machineName))
	}

	cfg := stpbcast.Config{Algorithm: *alg, Distribution: *distName, Sources: *s, MsgBytes: *msgBytes}
	res, err := stpbcast.SimulateTraced(m, cfg, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("machine:   %s (%d processors, logical %d×%d)\n", m.Name, m.P(), m.Rows, m.Cols)
	fmt.Printf("broadcast: %s, %s(%d), L=%d bytes\n", *alg, *distName, *s, *msgBytes)
	fmt.Printf("elapsed:   %.3f ms (simulated)\n", float64(res.Elapsed.Nanoseconds())/1e6)
	fmt.Printf("params:    congestion=%d wait=%d send/rec=%d av_msg_lgth=%.0fB av_act_proc=%.1f\n",
		res.Params.Congestion, res.Params.Wait, res.Params.SendRec, res.Params.AvgMsgLen, res.Params.AvgActive)
	fmt.Printf("active:    %s (processors communicating per iteration)\n", metrics.FormatProfile(res.ActiveProfile))
	fmt.Printf("events:    %s\n", res.Trace.Summary())
	if *hot > 0 {
		fmt.Println("hottest links (node→direction, occupancy, transfers):")
		for _, h := range res.HotLinks {
			if *hot == 0 {
				break
			}
			*hot--
			fmt.Printf("  %-12v %10.3f ms %6d transfers\n", h.Link, h.Busy.Milliseconds(), h.Transfers)
		}
	}
	if *heat {
		if mesh, ok := m.Topo.(*topology.Mesh2D); ok {
			loads := make([]network.Time, len(res.NodeLoad))
			for i, v := range res.NodeLoad {
				loads[i] = network.Time(v)
			}
			fmt.Printf("link-load heatmap (' ' idle … '@' hottest):\n%s", viz.Heatmap(mesh, loads))
		} else {
			fmt.Println("heatmap: only available for mesh machines")
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := res.Trace.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:     %d events written to %s\n", len(res.Trace.Events), *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stptrace:", err)
	os.Exit(1)
}
