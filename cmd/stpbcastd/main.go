// Command stpbcastd serves broadcasts as a service: a keyed pool of
// warm sessions behind a JSON-over-HTTP control plane (see
// internal/daemon for the endpoints and wire types).
//
// Usage:
//
//	stpbcastd                                # 127.0.0.1:7411
//	stpbcastd -addr 127.0.0.1:0              # random port, printed on stdout
//	stpbcastd -max-inflight 32 -tenant-quota 8 -max-sessions 4 -idle-ttl 2m
//	stpbcastd -no-pool                       # fresh session per request (baseline)
//
// The daemon prints "stpbcastd listening on http://ADDR" once the
// listener is up (scripts parse this to find a random port), drains
// gracefully on SIGINT/SIGTERM or POST /v1/shutdown — new requests get
// 503, in-flight ones finish, the pool closes — and then exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/daemon"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address (use :0 for a random port)")
	maxInFlight := flag.Int("max-inflight", 64, "max concurrently admitted broadcast requests (excess get 503)")
	tenantQuota := flag.Int("tenant-quota", 0, "max in-flight requests per tenant (0 = unlimited; excess get 429)")
	maxSessions := flag.Int("max-sessions", 8, "max warm sessions in the pool (LRU idle eviction at the cap)")
	idleTTL := flag.Duration("idle-ttl", 5*time.Minute, "evict sessions idle for this long (negative disables)")
	recvTimeout := flag.Duration("recv-timeout", 30*time.Second, "default per-receive deadline for requests that set none")
	noPool := flag.Bool("no-pool", false, "disable the session pool: open a fresh session per request (baseline mode)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "stpbcastd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	srv := daemon.New(daemon.Options{
		Pool: daemon.PoolOptions{
			MaxSessions: *maxSessions,
			IdleTTL:     *idleTTL,
			Disable:     *noPool,
		},
		MaxInFlight:        *maxInFlight,
		TenantQuota:        *tenantQuota,
		DefaultRecvTimeout: *recvTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpbcastd:", err)
		os.Exit(1)
	}
	fmt.Printf("stpbcastd listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("stpbcastd: %v, draining\n", s)
		srv.Shutdown()
		<-srv.Done()
	case <-srv.Done():
		// Drain requested over the API (POST /v1/shutdown).
		fmt.Println("stpbcastd: drained via /v1/shutdown")
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "stpbcastd:", err)
		srv.Close()
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	fmt.Println("stpbcastd: bye")
}
