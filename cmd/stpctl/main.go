// Command stpctl is the stpbcastd client: it speaks the daemon's
// JSON-over-HTTP control plane.
//
// Usage:
//
//	stpctl broadcast -engine tcp -rows 4 -cols 4 -alg Br_Lin -dist E -s 4 -bytes 1024
//	stpctl broadcast -rows 4 -cols 4 -collective AllReduce -bytes 1024
//	stpctl sessions              # the warm-session pool
//	stpctl stats                 # daemon-wide counters
//	stpctl ping                  # liveness
//	stpctl metrics               # raw text-format /metrics
//	stpctl shutdown              # graceful drain
//
// Every subcommand takes -addr (default $STPBCASTD_ADDR, else
// 127.0.0.1:7411). Exit status is 0 on success, 1 on a daemon or
// transport error, 2 on a usage error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	stpbcast "repro"
	"repro/internal/daemon"
)

func main() {
	if len(os.Args) < 2 || strings.HasPrefix(os.Args[1], "-") {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "broadcast":
		err = cmdBroadcast(args)
	case "sessions":
		err = cmdSessions(args)
	case "stats":
		err = cmdStats(args)
	case "ping":
		err = cmdPing(args)
	case "metrics":
		err = cmdMetrics(args)
	case "shutdown":
		err = cmdShutdown(args)
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "stpctl: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `stpctl — stpbcastd client

commands:
  broadcast   run one broadcast through the daemon
  sessions    list the warm-session pool
  stats       daemon-wide counters
  ping        liveness check
  metrics     raw /metrics text
  shutdown    graceful drain

run 'stpctl <command> -h' for that command's flags.
`)
}

// addrFlag installs -addr with the environment default.
func addrFlag(fs *flag.FlagSet) *string {
	def := os.Getenv("STPBCASTD_ADDR")
	if def == "" {
		def = "127.0.0.1:7411"
	}
	return fs.String("addr", def, "daemon address (host:port; default $STPBCASTD_ADDR)")
}

// baseURL normalizes an -addr value to an http base URL.
func baseURL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

var client = &http.Client{Timeout: 2 * time.Minute}

// call performs one API call, decoding a 2xx body into out (when
// non-nil) and any error body into a returned error.
func call(method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e daemon.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func cmdBroadcast(args []string) error {
	fs := flag.NewFlagSet("broadcast", flag.ExitOnError)
	addr := addrFlag(fs)
	engine := fs.String("engine", "sim", "engine: sim, live or tcp")
	topo := fs.String("topology", "paragon", "machine: paragon, paragon-mpi, t3d or hypercube")
	rows := fs.Int("rows", 4, "logical mesh rows")
	cols := fs.Int("cols", 4, "logical mesh cols")
	collective := fs.String("collective", "", "collective pattern: Broadcast (the default), Reduce, AllReduce, Scatter, AllGather or AllToAll")
	alg := fs.String("alg", "Auto", "algorithm name, or Auto")
	dist := fs.String("dist", "E", "source distribution name (source-taking collectives only)")
	s := fs.Int("s", 4, "source count (source-taking collectives only)")
	bytesF := fs.Int("bytes", 1024, "per-source message bytes")
	tenant := fs.String("tenant", "stpctl", "tenant name for quota accounting")
	recvTO := fs.Duration("recv-timeout", 0, "per-receive deadline (0 = daemon default)")
	runTO := fs.Duration("run-timeout", 0, "whole-run deadline (0 = none)")
	traceF := fs.Bool("trace", false, "record the run's event stream and print per-kind counts")
	jsonF := fs.Bool("json", false, "print the raw JSON response")
	fs.Parse(args)

	coll, err := stpbcast.ParseCollective(*collective)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stpctl broadcast: -collective: %v\n", err)
		os.Exit(2)
	}
	req := daemon.BroadcastRequest{
		Engine:        *engine,
		Topology:      *topo,
		Rows:          *rows,
		Cols:          *cols,
		Collective:    *collective,
		Algorithm:     *alg,
		MsgBytes:      *bytesF,
		Tenant:        *tenant,
		RecvTimeoutMs: recvTO.Milliseconds(),
		RunTimeoutMs:  runTO.Milliseconds(),
		Trace:         *traceF,
	}
	if coll.Caps().TakesSources {
		req.Distribution = *dist
		req.Sources = *s
	} else {
		// Sourceless collectives (AllGather, AllToAll) take no -dist/-s:
		// an explicit value is a usage error, never silently ignored.
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "dist" || f.Name == "s" {
				fmt.Fprintf(os.Stderr, "stpctl broadcast: -%s: %s takes no source set (every rank contributes)\n", f.Name, coll)
				os.Exit(2)
			}
		})
	}
	var resp daemon.BroadcastResponse
	if err := call(http.MethodPost, baseURL(*addr)+"/v1/broadcast", req, &resp); err != nil {
		return err
	}
	if *jsonF {
		return printJSON(resp)
	}
	fmt.Printf("ok  key=%s  collective=%s  alg=%s  elapsed=%v  server=%v  runs=%d  failures=%d  bytes=%d  reconnects=%d\n",
		resp.Key, resp.Collective, resp.Algorithm,
		time.Duration(resp.ElapsedNs), time.Duration(resp.ServerNs),
		resp.Runs, resp.Failures, resp.Bytes, resp.Reconnects)
	if resp.Events != nil {
		fmt.Printf("    events: %d sends, %d recvs, %d waits (%v blocked), %d barriers, %d faults\n",
			resp.Events.Sends, resp.Events.Recvs, resp.Events.Waits,
			time.Duration(resp.Events.WaitNs), resp.Events.Barriers, resp.Events.Faults)
	}
	return nil
}

func cmdSessions(args []string) error {
	fs := flag.NewFlagSet("sessions", flag.ExitOnError)
	addr := addrFlag(fs)
	jsonF := fs.Bool("json", false, "print the raw JSON response")
	fs.Parse(args)
	var resp daemon.SessionsResponse
	if err := call(http.MethodGet, baseURL(*addr)+"/v1/sessions", nil, &resp); err != nil {
		return err
	}
	if *jsonF {
		return printJSON(resp)
	}
	if len(resp.Sessions) == 0 {
		fmt.Println("no warm sessions")
		return nil
	}
	fmt.Printf("%-28s %6s %9s %12s %11s %5s %9s\n", "key", "runs", "failures", "bytes", "reconnects", "busy", "idle")
	for _, s := range resp.Sessions {
		fmt.Printf("%-28s %6d %9d %12d %11d %5v %8.1fs\n",
			s.Key, s.Runs, s.Failures, s.Bytes, s.Reconnects, s.Busy, float64(s.IdleMs)/1e3)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := addrFlag(fs)
	jsonF := fs.Bool("json", false, "print the raw JSON response")
	fs.Parse(args)
	var st daemon.StatsResponse
	if err := call(http.MethodGet, baseURL(*addr)+"/v1/stats", nil, &st); err != nil {
		return err
	}
	if *jsonF {
		return printJSON(st)
	}
	fmt.Printf("requests   %d (completed %d, failed %d, rejected %d)\n", st.Requests, st.Completed, st.Failed, st.Rejected)
	fmt.Printf("in flight  %d\n", st.InFlight)
	fmt.Printf("sessions   %d warm (%d opened, %d evicted)\n", st.Sessions, st.Opens, st.Evictions)
	fmt.Printf("latency    p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n", st.P50Ms, st.P95Ms, st.P99Ms)
	fmt.Printf("uptime     %.1fs  draining=%v\n", float64(st.UptimeMs)/1e3, st.Draining)
	for tenant, n := range st.TenantRequests {
		fmt.Printf("tenant     %-20s %d requests\n", tenant, n)
	}
	return nil
}

func cmdPing(args []string) error {
	fs := flag.NewFlagSet("ping", flag.ExitOnError)
	addr := addrFlag(fs)
	fs.Parse(args)
	start := time.Now()
	var p daemon.PingResponse
	if err := call(http.MethodGet, baseURL(*addr)+"/v1/ping", nil, &p); err != nil {
		return err
	}
	fmt.Printf("ok: up %.1fs, rtt %v, draining=%v\n", float64(p.UptimeMs)/1e3, time.Since(start).Round(time.Microsecond), p.Draining)
	return nil
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := addrFlag(fs)
	fs.Parse(args)
	resp, err := client.Get(baseURL(*addr) + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s", resp.Status)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func cmdShutdown(args []string) error {
	fs := flag.NewFlagSet("shutdown", flag.ExitOnError)
	addr := addrFlag(fs)
	fs.Parse(args)
	var resp daemon.ShutdownResponse
	if err := call(http.MethodPost, baseURL(*addr)+"/v1/shutdown", nil, &resp); err != nil {
		return err
	}
	fmt.Println("draining")
	return nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
