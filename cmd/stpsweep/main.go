// Command stpsweep runs custom parameter sweeps outside the paper's fixed
// figures: any machine, any set of algorithms and distributions, any
// source counts and message lengths, CSV to stdout.
//
// Usage:
//
//	stpsweep -machine paragon -rows 16 -cols 16 \
//	         -algs Br_Lin,Repos_xy_source -dists E,Cr \
//	         -s 16,32,64,128 -bytes 4096
//	stpsweep -machine t3d -p 256 -algs PersAlltoAll -dists E -s 8,64 -bytes 1024,8192
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	stpbcast "repro"
	"repro/internal/par"
)

func main() {
	machineName := flag.String("machine", "paragon", "paragon | paragon-mpi | t3d | t3d-random | hypercube")
	rows := flag.Int("rows", 10, "mesh rows (paragon)")
	cols := flag.Int("cols", 10, "mesh columns (paragon)")
	p := flag.Int("p", 128, "processors (t3d)")
	dim := flag.Int("dim", 6, "dimension (hypercube)")
	seed := flag.Int64("seed", 1, "placement seed (t3d-random)")
	algsFlag := flag.String("algs", "Br_Lin", "comma-separated algorithm names")
	distsFlag := flag.String("dists", "E", "comma-separated distribution names")
	sFlag := flag.String("s", "16", "comma-separated source counts")
	bytesFlag := flag.String("bytes", "4096", "comma-separated message lengths")
	parallel := flag.Int("parallel", 0, "max concurrent sweep cells (0 = GOMAXPROCS, 1 = serial); row order is identical at every setting")
	flag.Parse()

	stpbcast.SetParallelism(*parallel)

	var m *stpbcast.Machine
	switch *machineName {
	case "paragon":
		m = stpbcast.NewParagon(*rows, *cols)
	case "paragon-mpi":
		m = stpbcast.NewParagonMPI(*rows, *cols)
	case "t3d":
		m = stpbcast.NewT3D(*p)
	case "t3d-random":
		m = stpbcast.NewT3DRandom(*p, *seed)
	case "hypercube":
		m = stpbcast.NewHypercube(*dim)
	default:
		fatal(fmt.Errorf("unknown machine %q", *machineName))
	}

	algs := splitList(*algsFlag)
	dists := splitList(*distsFlag)
	ss, err := splitInts(*sFlag)
	if err != nil {
		fatal(err)
	}
	ls, err := splitInts(*bytesFlag)
	if err != nil {
		fatal(err)
	}

	// Cells fan out across the bounded worker pool; rows are buffered by
	// index so the CSV comes out in the same order as a serial sweep.
	type cell struct {
		alg, d string
		s, l   int
	}
	var cells []cell
	for _, alg := range algs {
		for _, d := range dists {
			for _, s := range ss {
				for _, l := range ls {
					cells = append(cells, cell{alg, d, s, l})
				}
			}
		}
	}
	out := make([]string, len(cells))
	if err := par.ForEach(len(cells), func(i int) error {
		c := cells[i]
		res, err := stpbcast.Simulate(m, stpbcast.Config{
			Algorithm: c.alg, Distribution: c.d, Sources: c.s, MsgBytes: c.l,
		})
		if err != nil {
			return err
		}
		pm := res.Params
		out[i] = fmt.Sprintf("%s,%s,%s,%d,%d,%.4f,%d,%d,%d,%.0f,%.1f",
			m.Name, c.alg, c.d, c.s, c.l,
			float64(res.Elapsed.Nanoseconds())/1e6,
			pm.Congestion, pm.Wait, pm.SendRec, pm.AvgMsgLen, pm.AvgActive)
		return nil
	}); err != nil {
		fatal(err)
	}
	fmt.Println("machine,algorithm,distribution,sources,msg_bytes,time_ms,congestion,wait,send_rec,av_msg_lgth,av_act_proc")
	for _, row := range out {
		fmt.Println(row)
	}
}

func splitList(v string) []string {
	var out []string
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func splitInts(v string) ([]int, error) {
	var out []int
	for _, part := range splitList(v) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("stpsweep: bad integer %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stpsweep:", err)
	os.Exit(1)
}
