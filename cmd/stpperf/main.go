// Command stpperf turns `go test -bench` output into a JSON performance
// snapshot and gates regressions against a committed baseline.
//
// Usage:
//
//	go test -bench 'Fig' -benchmem -count 3 -run '^$' . | stpperf -out BENCH_sim.json
//	stpperf -check -baseline BENCH_baseline.json -current BENCH_sim.json -max-ratio 2
//
// Parsing keeps the best (minimum) ns/op and allocs/op over the -count
// repetitions, which filters scheduler noise on shared CI runners. The
// check fails when any benchmark present in the baseline is missing from
// the current snapshot or exceeds max-ratio times its baseline ns/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Entry is one benchmark's snapshot. Samples counts the -count
// repetitions folded into it.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// benchLine matches one result line of `go test -bench -benchmem`, e.g.
//
//	BenchmarkFig3SourcesSweep-8   2  623456789 ns/op  1234567 B/op  8910 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so snapshots compare across
// hosts, and custom metrics (b.ReportMetric) may sit between ns/op and
// the -benchmem pair.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?([\d.]+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_sim.json", "snapshot file to write when parsing")
	check := flag.Bool("check", false, "compare -current against -baseline instead of parsing stdin")
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline snapshot")
	current := flag.String("current", "BENCH_sim.json", "freshly produced snapshot")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when current ns/op exceeds this multiple of the baseline")
	flag.Parse()

	if *check {
		if err := runCheck(*baseline, *current, *maxRatio); err != nil {
			fmt.Fprintln(os.Stderr, "stpperf:", err)
			os.Exit(1)
		}
		return
	}
	if err := runParse(os.Stdin, *out); err != nil {
		fmt.Fprintln(os.Stderr, "stpperf:", err)
		os.Exit(1)
	}
}

func runParse(r *os.File, out string) error {
	entries := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the build log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		e := Entry{NsPerOp: ns, Samples: 1}
		if m[3] != "" {
			b, _ := strconv.ParseFloat(m[3], 64)
			e.BytesPerOp = int64(b)
			e.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if prev, ok := entries[m[1]]; ok {
			// Best-of-count: keep the fastest repetition of each metric.
			e.Samples = prev.Samples + 1
			if prev.NsPerOp < e.NsPerOp {
				e.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp < e.BytesPerOp {
				e.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp < e.AllocsPerOp {
				e.AllocsPerOp = prev.AllocsPerOp
			}
		}
		entries[m[1]] = e
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stpperf: wrote %d benchmarks to %s\n", len(entries), out)
	return nil
}

func load(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Entry
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func runCheck(basePath, curPath string, maxRatio float64) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(curPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL %s: present in baseline, missing from current run\n", name)
			failures++
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok  "
		if ratio > maxRatio {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %-40s %12.0f -> %12.0f ns/op  (%.2fx)  allocs %d -> %d\n",
			status, name, b.NsPerOp, c.NsPerOp, ratio, b.AllocsPerOp, c.AllocsPerOp)
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.1fx ns/op vs %s", failures, maxRatio, basePath)
	}
	fmt.Printf("all %d benchmarks within %.1fx of %s\n", len(names), maxRatio, basePath)
	return nil
}
