// Command stpreport regenerates every experiment and emits a Markdown
// report — one section per paper table/figure with the paper's expected
// behaviour and the measured series — suitable for appending to
// EXPERIMENTS.md or pasting into an issue.
//
// Usage:
//
//	stpreport              # full report to stdout
//	stpreport -o report.md # write to a file
//	stpreport -ids fig3,fig9
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	stpbcast "repro"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	ids := flag.String("ids", "", "comma-separated experiment ids (default all)")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	exps := stpbcast.Experiments()
	if *ids != "" {
		var chosen []stpbcast.Experiment
		for _, id := range strings.Split(*ids, ",") {
			e, err := stpbcast.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			chosen = append(chosen, e)
		}
		exps = chosen
	}

	fmt.Fprintf(w, "# s-to-p broadcasting — regenerated results\n\n")
	fmt.Fprintf(w, "Generated %s by cmd/stpreport. All values are simulated\n", time.Now().Format("2006-01-02 15:04"))
	fmt.Fprintf(w, "milliseconds (or percent where noted); runs are deterministic.\n\n")
	for _, e := range exps {
		s, err := e.Run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(w, "**Paper:** %s\n\n", e.Paper)
		writeMarkdownTable(w, s)
		if s.Notes != "" {
			fmt.Fprintf(w, "\n*%s*\n", s.Notes)
		}
		fmt.Fprintln(w)
	}
}

func writeMarkdownTable(w io.Writer, s *stpbcast.Series) {
	fmt.Fprintf(w, "| %s |", s.XAxis)
	for _, name := range s.Order {
		fmt.Fprintf(w, " %s |", name)
	}
	fmt.Fprintf(w, "\n|---|")
	for range s.Order {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for i, x := range s.XLabels {
		fmt.Fprintf(w, "| %s |", x)
		for _, name := range s.Order {
			fmt.Fprintf(w, " %.3f |", s.Get(name, i))
		}
		fmt.Fprintln(w)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stpreport:", err)
	os.Exit(1)
}
