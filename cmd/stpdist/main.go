// Command stpdist visualizes the paper's source distributions on a logical
// mesh, the way Figure 1 draws them ('#' marks a source processor).
//
// Usage:
//
//	stpdist -rows 10 -cols 10 -s 30            # all distributions
//	stpdist -rows 10 -cols 10 -s 30 -dist Cr   # one distribution
//	stpdist -rows 16 -cols 16 -s 64 -ideal     # ideal targets too
package main

import (
	"flag"
	"fmt"
	"os"

	stpbcast "repro"
	"repro/internal/dist"
)

func main() {
	rows := flag.Int("rows", 10, "mesh rows")
	cols := flag.Int("cols", 10, "mesh columns")
	s := flag.Int("s", 30, "number of source processors")
	name := flag.String("dist", "", "single distribution to draw (R C E Dr Dl B Cr Sq); empty = all")
	ideal := flag.Bool("ideal", false, "also draw the ideal repositioning targets")
	flag.Parse()

	var dists []stpbcast.Distribution
	if *name != "" {
		d, err := stpbcast.DistributionByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpdist:", err)
			os.Exit(1)
		}
		dists = []stpbcast.Distribution{d}
	} else {
		dists = stpbcast.Distributions()
	}
	if *ideal {
		dists = append(dists, dist.IdealRows(), dist.IdealColumns(), dist.IdealSnake())
	}
	for _, d := range dists {
		sources, err := d.Sources(*rows, *cols, *s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stpdist: %s: %v\n", d.Name(), err)
			os.Exit(1)
		}
		fmt.Printf("%s(%d) on %d×%d:\n%s\n", d.Name(), *s, *rows, *cols, dist.Render(*rows, *cols, sources))
	}
}
