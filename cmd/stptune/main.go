// Command stptune drives the algorithm planner (internal/plan): it plans
// single instances, sweeps grids with a chosen-vs-best table, warms a
// persistent plan cache, and inspects cache contents.
//
// Usage:
//
//	stptune plan    -machine paragon -rows 10 -cols 10 -dist E -s 30 -bytes 4096
//	stptune plan    -machine t3d -p 64 -collective AllToAll -bytes 64
//	stptune sweep   -machine t3d -p 256 -dists E,Cr -s 10,64 -bytes 1024,16384
//	stptune warm    -machine paragon -cache plans.json -dists R,C,E,Dr,Dl,B,Cr,Sq -s 10,64 -bytes 1024,16384
//	stptune inspect -cache plans.json
//
// The sweep table reports, per cell, the planner's choice and the best
// fixed algorithm with their simulated times; ratio 1.00 means the
// planner matched the optimum. warm populates the cache only (no
// exhaustive baseline), so later sweeps and Auto runs answer from cache;
// the trailing counter line shows cache hits/misses and probe runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/plan"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "plan":
		runPlan(args)
	case "sweep":
		runSweep(args)
	case "warm":
		runWarm(args)
	case "inspect":
		runInspect(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: stptune {plan|sweep|warm|inspect} [flags]")
	os.Exit(2)
}

// commonFlags are the machine and planner knobs shared by the planning
// subcommands.
type commonFlags struct {
	fs        *flag.FlagSet
	machine   *string
	rows      *int
	cols      *int
	p         *int
	dim       *int
	seed      *int64
	cachePath *string
	topK      *int
	workers   *int
	maxOps    *int
}

func newCommonFlags(name string) *commonFlags {
	fs := flag.NewFlagSet("stptune "+name, flag.ExitOnError)
	return &commonFlags{
		fs:        fs,
		machine:   fs.String("machine", "paragon", "paragon | paragon-mpi | t3d | t3d-random | hypercube"),
		rows:      fs.Int("rows", 10, "mesh rows (paragon)"),
		cols:      fs.Int("cols", 10, "mesh columns (paragon)"),
		p:         fs.Int("p", 128, "processors (t3d)"),
		dim:       fs.Int("dim", 6, "dimension (hypercube)"),
		seed:      fs.Int64("seed", 1, "placement seed (t3d-random)"),
		cachePath: fs.String("cache", "", "plan cache file (empty = in-memory)"),
		topK:      fs.Int("topk", 0, "analytic candidates to probe (0 = default, <0 = analytic only)"),
		workers:   fs.Int("workers", 0, "probe worker pool size (0 = GOMAXPROCS)"),
		maxOps:    fs.Int("maxops", 0, "per-probe operation budget (0 = unlimited)"),
	}
}

func (c *commonFlags) machineFor() (*machine.Machine, error) {
	switch *c.machine {
	case "paragon":
		return machine.Paragon(*c.rows, *c.cols), nil
	case "paragon-mpi":
		return machine.ParagonMPI(*c.rows, *c.cols), nil
	case "t3d":
		return machine.T3D(*c.p), nil
	case "t3d-random":
		return machine.T3DRandom(*c.p, *c.seed), nil
	case "hypercube":
		return machine.HypercubeNX(*c.dim), nil
	}
	return nil, fmt.Errorf("unknown machine %q", *c.machine)
}

func (c *commonFlags) planner() (*plan.Planner, *plan.Cache, error) {
	cache := plan.NewMemCache(0)
	if *c.cachePath != "" {
		var err error
		cache, err = plan.OpenCache(*c.cachePath, 0)
		if err != nil {
			return nil, nil, err
		}
	}
	p := plan.New(plan.Options{
		TopK:        *c.topK,
		Workers:     *c.workers,
		Cache:       cache,
		MaxProbeOps: *c.maxOps,
	})
	return p, cache, nil
}

func runPlan(args []string) {
	c := newCommonFlags("plan")
	collFlag := c.fs.String("collective", "", "collective pattern: Broadcast (the default), Reduce, AllReduce, Scatter, AllGather or AllToAll")
	distName := c.fs.String("dist", "E", "distribution name (source-taking collectives only)")
	s := c.fs.Int("s", 16, "source count (source-taking collectives only)")
	bytes := c.fs.Int("bytes", 4096, "message length (per-destination chunk for chunked collectives)")
	c.fs.Parse(args)
	coll, err := core.ParseCollective(*collFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stptune plan: -collective:", err)
		os.Exit(2)
	}
	// Source flags only make sense for collectives that take a source
	// set; an explicit -dist/-s on the others is a usage error, never
	// silently ignored. Scatter takes exactly one root.
	distSet := false
	c.fs.Visit(func(f *flag.Flag) {
		if f.Name != "dist" && f.Name != "s" {
			return
		}
		if !coll.Caps().TakesSources {
			fmt.Fprintf(os.Stderr, "stptune plan: -%s: %s takes no source set (every rank contributes)\n", f.Name, coll)
			os.Exit(2)
		}
		if f.Name == "dist" {
			distSet = true
		}
		if f.Name == "s" && coll.Caps().SingleSource && *s != 1 {
			fmt.Fprintf(os.Stderr, "stptune plan: -s: %s takes a single root, got %d\n", coll, *s)
			os.Exit(2)
		}
	})
	m, err := c.machineFor()
	if err != nil {
		fatal(err)
	}
	pl, _, err := c.planner()
	if err != nil {
		fatal(err)
	}
	var spec core.Spec
	dn := ""
	switch {
	case !coll.Caps().TakesSources:
		spec = core.Spec{Rows: m.Rows, Cols: m.Cols, Sources: core.AllRanksSources(m.P())}
	case coll.Caps().SingleSource && !distSet:
		spec = core.Spec{Rows: m.Rows, Cols: m.Cols, Sources: []int{0}}
	default:
		sv := *s
		if coll.Caps().SingleSource {
			sv = 1
		}
		d, err := dist.ByName(*distName)
		if err != nil {
			fatal(err)
		}
		spec, err = bench.SpecFor(m, d, sv)
		if err != nil {
			fatal(err)
		}
		dn = *distName
	}
	dec, err := pl.Decide(context.Background(), m, plan.Request{Spec: spec, Collective: coll, MsgLen: *bytes, DistName: dn})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("machine    %s\n", m.Name)
	fmt.Printf("collective %s\n", coll)
	fmt.Printf("key        %s\n", dec.Key.String())
	fmt.Printf("chosen     %s (%.4f ms, via %s)\n", dec.Algorithm, dec.ElapsedMs, dec.Source)
	if len(dec.Ranking) > 0 {
		fmt.Println("analytic ranking (predicted ms):")
		for i, sc := range dec.Ranking {
			fmt.Printf("  %2d. %-18s %10.4f\n", i+1, sc.Algorithm, sc.PredictedMs)
		}
	}
	if len(dec.Probes) > 0 {
		fmt.Println("probes (simulated ms):")
		for _, pr := range dec.Probes {
			fmt.Printf("      %-18s %10.4f\n", pr.Algorithm, pr.ElapsedMs)
		}
	}
}

// sweepGrid plans every (distribution, s, L) cell. When exhaustive is
// true it also simulates every registered algorithm to report the true
// best and the chosen/best ratio.
func sweepGrid(c *commonFlags, distsFlag, sFlag, bytesFlag string, exhaustive bool) {
	m, err := c.machineFor()
	if err != nil {
		fatal(err)
	}
	pl, cache, err := c.planner()
	if err != nil {
		fatal(err)
	}
	dists := splitList(distsFlag)
	ss, err := splitInts(sFlag)
	if err != nil {
		fatal(err)
	}
	ls, err := splitInts(bytesFlag)
	if err != nil {
		fatal(err)
	}
	if exhaustive {
		fmt.Println("machine,distribution,sources,msg_bytes,chosen,chosen_ms,best,best_ms,ratio,source")
	} else {
		fmt.Println("machine,distribution,sources,msg_bytes,chosen,chosen_ms,source")
	}
	for _, dn := range dists {
		d, err := dist.ByName(dn)
		if err != nil {
			fatal(err)
		}
		for _, s := range ss {
			for _, l := range ls {
				spec, err := bench.SpecFor(m, d, s)
				if err != nil {
					fatal(err)
				}
				dec, err := pl.Decide(context.Background(), m, plan.Request{Spec: spec, MsgLen: l, DistName: dn})
				if err != nil {
					fatal(err)
				}
				if !exhaustive {
					fmt.Printf("%s,%s,%d,%d,%s,%.4f,%s\n", m.Name, dn, s, l, dec.Algorithm, dec.ElapsedMs, dec.Source)
					continue
				}
				bestName, bestMs := "", math.Inf(1)
				for _, a := range core.Registry() {
					v, err := bench.MustMillis(m, a, spec, l)
					if err != nil {
						fatal(err)
					}
					if v < bestMs {
						bestName, bestMs = a.Name(), v
					}
				}
				fmt.Printf("%s,%s,%d,%d,%s,%.4f,%s,%.4f,%.3f,%s\n",
					m.Name, dn, s, l, dec.Algorithm, dec.ElapsedMs, bestName, bestMs, dec.ElapsedMs/bestMs, dec.Source)
			}
		}
	}
	if err := cache.Save(); err != nil {
		fatal(err)
	}
	printCounters()
}

func runSweep(args []string) {
	c := newCommonFlags("sweep")
	dists := c.fs.String("dists", "R,C,E,Dr,Dl,B,Cr,Sq", "comma-separated distribution names")
	sFlag := c.fs.String("s", "10,64", "comma-separated source counts")
	bytesFlag := c.fs.String("bytes", "1024,16384", "comma-separated message lengths")
	c.fs.Parse(args)
	sweepGrid(c, *dists, *sFlag, *bytesFlag, true)
}

func runWarm(args []string) {
	c := newCommonFlags("warm")
	dists := c.fs.String("dists", "R,C,E,Dr,Dl,B,Cr,Sq", "comma-separated distribution names")
	sFlag := c.fs.String("s", "10,64", "comma-separated source counts")
	bytesFlag := c.fs.String("bytes", "1024,16384", "comma-separated message lengths")
	c.fs.Parse(args)
	sweepGrid(c, *dists, *sFlag, *bytesFlag, false)
}

func runInspect(args []string) {
	fs := flag.NewFlagSet("stptune inspect", flag.ExitOnError)
	cachePath := fs.String("cache", "", "plan cache file")
	fs.Parse(args)
	if *cachePath == "" {
		fatal(fmt.Errorf("inspect needs -cache"))
	}
	cache, err := plan.OpenCache(*cachePath, 0)
	if err != nil {
		fatal(err)
	}
	plans := cache.Snapshot()
	fmt.Printf("%s: %d cached plans (format v%d)\n", *cachePath, len(plans), plan.CacheVersion)
	for _, cp := range plans {
		fmt.Printf("  %-60s -> %-18s %10.4f ms  (%s, seq %d)\n",
			cp.Key, cp.Entry.Algorithm, cp.Entry.ElapsedMs, cp.Entry.Source, cp.Entry.Seq)
	}
}

func printCounters() {
	hits := metrics.GetCounter(plan.CounterCacheHits).Value()
	misses := metrics.GetCounter(plan.CounterCacheMisses).Value()
	probes := metrics.GetCounter(plan.CounterProbes).Value()
	fmt.Fprintf(os.Stderr, "stptune: cache hits %d, misses %d, probe runs %d\n", hits, misses, probes)
}

func splitList(v string) []string {
	var out []string
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func splitInts(v string) ([]int, error) {
	var out []int
	for _, part := range splitList(v) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("stptune: bad integer %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stptune:", err)
	os.Exit(1)
}
