// Command stpbench regenerates the tables and figures of the paper's
// evaluation section on the simulated Paragon and T3D.
//
// Usage:
//
//	stpbench -list               # list every experiment
//	stpbench -fig fig3           # print one figure's series
//	stpbench -fig all            # print everything (EXPERIMENTS.md input)
//	stpbench -fig fig6 -csv      # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	stpbcast "repro"
	"repro/internal/viz"
)

func main() {
	list := flag.Bool("list", false, "list the available experiments")
	fig := flag.String("fig", "", "experiment id to run (e.g. fig3), or 'all'")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	plot := flag.Bool("plot", false, "render each curve as an ASCII bar chart")
	flag.Parse()

	switch {
	case *list:
		for _, e := range stpbcast.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
	case *fig == "all":
		for _, e := range stpbcast.Experiments() {
			if err := runOne(e, *csv, *plot); err != nil {
				fatal(err)
			}
		}
	case *fig != "":
		e, err := stpbcast.ExperimentByID(*fig)
		if err != nil {
			fatal(err)
		}
		if err := runOne(e, *csv, *plot); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e stpbcast.Experiment, csv, plot bool) error {
	s, err := e.Run()
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Printf("== %s == %s\n", e.ID, e.Title)
	fmt.Printf("paper: %s\n", e.Paper)
	switch {
	case csv:
		printCSV(s)
	case plot:
		for _, curve := range s.Order {
			vals := make([]float64, len(s.XLabels))
			for i := range s.XLabels {
				vals[i] = s.Get(curve, i)
			}
			fmt.Print(viz.SeriesChart(curve+" ["+s.YAxis+"]", s.XLabels, vals, 50))
		}
	default:
		fmt.Print(s.Format())
	}
	fmt.Println()
	return nil
}

func printCSV(s *stpbcast.Series) {
	fmt.Printf("%s,%s\n", s.XAxis, strings.Join(s.Order, ","))
	for i, x := range s.XLabels {
		row := []string{x}
		for _, name := range s.Order {
			row = append(row, fmt.Sprintf("%.4f", s.Get(name, i)))
		}
		fmt.Println(strings.Join(row, ","))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stpbench:", err)
	os.Exit(1)
}
