// Command stpbench regenerates the tables and figures of the paper's
// evaluation section on the simulated Paragon and T3D, and runs the
// chaos harness over the real-byte engines.
//
// Usage:
//
//	stpbench -list               # list every experiment
//	stpbench -fig fig3           # print one figure's series
//	stpbench -fig all            # print everything (EXPERIMENTS.md input)
//	stpbench -fig fig6 -csv      # machine-readable output
//	stpbench -chaos              # fault-injection sweep over both engines
//	stpbench -chaos -seed 7 -engine tcp
//	stpbench -session -repeat 200 -engine tcp   # warm-session vs one-shot throughput
//	stpbench -session -engine tcp -flush 512 -pipeline 4   # batched frames, 4 async runs in flight
//	stpbench -session -engine tcp -sparse -ports 4   # route-planned sparse mesh, 4 link drivers per rank
//	stpbench -daemon 127.0.0.1:7411 -conc 1,2,4,8 -requests 200 -engine tcp
//	stpbench -daemon 127.0.0.1:7411 -rate 50 -duration 10s -out BENCH_daemon.json
//
// Flag combinations are validated up front: -list, -fig, -chaos,
// -session and -daemon are mutually exclusive modes, and every other
// flag belongs to exactly one of them (e.g. -repeat to -session, -seed
// to -chaos, -conc/-rate/-out to -daemon). A flag set outside its mode
// is a usage error (exit 2), never silently ignored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	stpbcast "repro"
	"repro/internal/daemon"
	"repro/internal/viz"
)

func main() {
	// A cluster coordinator may have re-executed this binary as a
	// worker process (the figCluster experiment does); route such
	// copies into worker mode before anything else.
	stpbcast.MaybeClusterWorker()
	list := flag.Bool("list", false, "list the available experiments")
	fig := flag.String("fig", "", "experiment id to run (e.g. fig3), or 'all'")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table (with -fig)")
	plot := flag.Bool("plot", false, "render each curve as an ASCII bar chart (with -fig)")
	chaos := flag.Bool("chaos", false, "run the fault-injection sweep on the real-byte engines")
	seed := flag.Int64("seed", 1, "chaos schedule seed (same seed = same fault schedule; with -chaos)")
	engine := flag.String("engine", "", "engine: sim, live, tcp or both (with -chaos, -session or -daemon)")
	parallel := flag.Int("parallel", 0, "max concurrent experiment cells (0 = GOMAXPROCS, 1 = serial); output is identical at every setting")
	session := flag.Bool("session", false, "time -repeat back-to-back broadcasts over one warm Session vs the one-shot path")
	repeat := flag.Int("repeat", 100, "broadcast count (with -session)")
	flush := flag.Int("flush", 0, "TCP small-frame batching threshold in bytes, 0 = off (with -session)")
	pipeline := flag.Int("pipeline", 0, "submit session broadcasts via RunAsync with this many in flight, 0 = synchronous (with -session)")
	ports := flag.Int("ports", 0, "TCP k-ported link drivers: outbound transmissions in flight per rank, 0 = inline writes (with -session)")
	sparse := flag.Bool("sparse", false, "open the TCP session over the route-planned sparse mesh instead of the full mesh (with -session)")
	daemonAddr := flag.String("daemon", "", "load-generate against a running stpbcastd at this address")
	conc := flag.String("conc", "8", "closed-loop worker counts, comma-separated sweep (with -daemon)")
	requests := flag.Int("requests", 200, "closed-loop requests per concurrency level (with -daemon)")
	rate := flag.Float64("rate", 0, "open-loop arrivals per second; 0 = closed loop (with -daemon)")
	duration := flag.Duration("duration", 5*time.Second, "open-loop duration (with -daemon -rate)")
	rows := flag.Int("rows", 4, "daemon workload mesh rows (with -daemon)")
	cols := flag.Int("cols", 4, "daemon workload mesh cols (with -daemon)")
	collective := flag.String("collective", "", "daemon workload collective pattern, absent = Broadcast (with -daemon)")
	alg := flag.String("alg", "Br_Lin", "daemon workload algorithm (with -daemon)")
	dist := flag.String("dist", "E", "daemon workload source distribution (with -daemon)")
	sources := flag.Int("s", 4, "daemon workload source count (with -daemon)")
	msgBytes := flag.Int("bytes", 1024, "daemon workload per-source message bytes (with -daemon)")
	tenant := flag.String("tenant", "stpbench", "daemon workload tenant name (with -daemon)")
	out := flag.String("out", "", "write the load reports as JSON to this file (with -daemon)")
	flag.Parse()

	if err := validateFlags(); err != nil {
		fmt.Fprintln(os.Stderr, "stpbench:", err)
		fmt.Fprintln(os.Stderr)
		flag.Usage()
		os.Exit(2)
	}

	stpbcast.SetParallelism(*parallel)

	switch {
	case *daemonAddr != "":
		if err := runDaemonLoad(*daemonAddr, *engine, *conc, *requests, *rate, *duration,
			*rows, *cols, *collective, *alg, *dist, *sources, *msgBytes, *tenant, *out); err != nil {
			fatal(err)
		}
	case *session:
		if err := runSession(orBoth(*engine), *repeat, *flush, *pipeline, *ports, *sparse); err != nil {
			fatal(err)
		}
	case *chaos:
		if err := runChaos(*seed, orBoth(*engine)); err != nil {
			fatal(err)
		}
	case *list:
		for _, e := range stpbcast.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
	case *fig == "all":
		for _, e := range stpbcast.Experiments() {
			if err := runOne(e, *csv, *plot); err != nil {
				fatal(err)
			}
		}
	case *fig != "":
		e, err := stpbcast.ExperimentByID(*fig)
		if err != nil {
			fatal(err)
		}
		if err := runOne(e, *csv, *plot); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// orBoth maps the unset -engine to the historical "both" default of the
// chaos and session modes.
func orBoth(engine string) string {
	if engine == "" {
		return "both"
	}
	return engine
}

// flagModes maps every mode-specific flag to the single mode it belongs
// to. Flags absent here (-parallel) are global.
var flagModes = map[string]string{
	"fig": "-fig", "csv": "-fig", "plot": "-fig",
	"chaos": "-chaos", "seed": "-chaos",
	"session": "-session", "repeat": "-session", "flush": "-session", "pipeline": "-session",
	"ports": "-session", "sparse": "-session",
	"list":   "-list",
	"daemon": "-daemon", "conc": "-daemon", "requests": "-daemon", "rate": "-daemon",
	"duration": "-daemon", "rows": "-daemon", "cols": "-daemon", "collective": "-daemon",
	"alg": "-daemon", "dist": "-daemon", "s": "-daemon", "bytes": "-daemon",
	"tenant": "-daemon", "out": "-daemon",
}

// engineModes lists the modes -engine applies to, with the values each
// accepts.
var engineValues = map[string]map[string]bool{
	"-chaos":   {"live": true, "tcp": true, "both": true},
	"-session": {"sim": true, "live": true, "tcp": true, "both": true},
	"-daemon":  {"sim": true, "live": true, "tcp": true},
}

// validateFlags rejects contradictory flag combinations up front with a
// usage error instead of panicking or silently ignoring flags.
func validateFlags() error {
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	// Exactly one mode may be requested.
	mode := ""
	for _, m := range []struct{ flag, mode string }{
		{"list", "-list"}, {"fig", "-fig"}, {"chaos", "-chaos"},
		{"session", "-session"}, {"daemon", "-daemon"},
	} {
		if !set[m.flag] {
			continue
		}
		if mode != "" {
			return fmt.Errorf("%s and %s are mutually exclusive modes", mode, m.mode)
		}
		mode = m.mode
	}

	// Mode-specific flags must not leak into other modes.
	for name := range set {
		owner, owned := flagModes[name]
		if owned && owner != mode {
			if mode == "" {
				return fmt.Errorf("-%s requires %s mode", name, owner)
			}
			return fmt.Errorf("-%s belongs to %s mode, not %s", name, owner, mode)
		}
	}
	if set["engine"] {
		accepted, ok := engineValues[mode]
		if !ok {
			return fmt.Errorf("-engine applies to -chaos, -session and -daemon modes only")
		}
		val := flag.Lookup("engine").Value.String()
		if !accepted[val] {
			keys := make([]string, 0, len(accepted))
			for k := range accepted {
				keys = append(keys, k)
			}
			return fmt.Errorf("-engine %q invalid for %s mode (want one of %s)", val, mode, strings.Join(keys, ", "))
		}
	}

	// Value sanity per mode.
	switch mode {
	case "-session":
		if n := intFlag("repeat"); n <= 0 {
			return fmt.Errorf("-repeat must be positive, got %d", n)
		}
		if n := intFlag("flush"); n < 0 {
			return fmt.Errorf("-flush must be non-negative, got %d", n)
		}
		if n := intFlag("pipeline"); n < 0 {
			return fmt.Errorf("-pipeline must be non-negative, got %d", n)
		}
		if n := intFlag("ports"); n < 0 {
			return fmt.Errorf("-ports must be non-negative, got %d", n)
		}
		if intFlag("ports") > 0 && intFlag("flush") > 0 {
			return fmt.Errorf("-flush and -ports are mutually exclusive (batched inline writes vs link drivers)")
		}
		// -flush, -ports and -sparse shape the TCP mesh only; under any
		// other engine (including the default "both" sweep) they would
		// be silently ignored for part or all of the comparison.
		for _, name := range []string{"flush", "ports", "sparse"} {
			if set[name] && orBoth(flag.Lookup("engine").Value.String()) != "tcp" {
				return fmt.Errorf("-%s is TCP-only; pass -engine tcp alongside it", name)
			}
		}
	case "-daemon":
		coll, err := stpbcast.ParseCollective(flag.Lookup("collective").Value.String())
		if err != nil {
			return fmt.Errorf("-collective: %w", err)
		}
		if !coll.Caps().TakesSources {
			// Sourceless collectives take no -dist/-s: an explicit value
			// is a usage error, never silently ignored.
			for _, name := range []string{"dist", "s"} {
				if set[name] {
					return fmt.Errorf("-%s: %s takes no source set (every rank contributes)", name, coll)
				}
			}
		} else if coll.Caps().SingleSource && set["s"] && intFlag("s") != 1 {
			return fmt.Errorf("-s: %s takes a single root, got %d", coll, intFlag("s"))
		}
		if n := intFlag("requests"); n <= 0 {
			return fmt.Errorf("-requests must be positive, got %d", n)
		}
		if _, err := parseConcSweep(flag.Lookup("conc").Value.String()); err != nil {
			return err
		}
		if set["rate"] && set["conc"] {
			return fmt.Errorf("-rate (open loop) and -conc (closed loop) are mutually exclusive")
		}
		if set["duration"] && !set["rate"] {
			return fmt.Errorf("-duration applies to open-loop runs only (set -rate)")
		}
	case "-fig":
		if set["csv"] && set["plot"] {
			return fmt.Errorf("-csv and -plot are mutually exclusive")
		}
	}
	return nil
}

// intFlag reads a registered int flag's current value.
func intFlag(name string) int {
	g, ok := flag.Lookup(name).Value.(flag.Getter)
	if !ok {
		return 0
	}
	n, _ := g.Get().(int)
	return n
}

// parseConcSweep parses "1,2,4,8" into worker counts.
func parseConcSweep(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("-conc wants positive comma-separated worker counts, got %q", s)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-conc wants at least one worker count, got %q", s)
	}
	return out, nil
}

func runOne(e stpbcast.Experiment, csv, plot bool) error {
	s, err := e.Run()
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Printf("== %s == %s\n", e.ID, e.Title)
	fmt.Printf("paper: %s\n", e.Paper)
	switch {
	case csv:
		printCSV(s)
	case plot:
		for _, curve := range s.Order {
			vals := make([]float64, len(s.XLabels))
			for i := range s.XLabels {
				vals[i] = s.Get(curve, i)
			}
			fmt.Print(viz.SeriesChart(curve+" ["+s.YAxis+"]", s.XLabels, vals, 50))
		}
	default:
		fmt.Print(s.Format())
	}
	fmt.Println()
	return nil
}

func printCSV(s *stpbcast.Series) {
	fmt.Printf("%s,%s\n", s.XAxis, strings.Join(s.Order, ","))
	for i, x := range s.XLabels {
		row := []string{x}
		for _, name := range s.Order {
			row = append(row, fmt.Sprintf("%.4f", s.Get(name, i)))
		}
		fmt.Println(strings.Join(row, ","))
	}
}

// runSession times n back-to-back 1 KiB broadcasts on a 4×4 mesh twice:
// once paying full engine setup per broadcast (the deprecated one-shot
// path), once over a single warm Session — and prints both rates, the
// speedup and the session's aggregate stats. flush sets the TCP
// engine's small-frame batching threshold; pipeline > 0 drives the
// session loop through RunAsync with that many broadcasts in flight;
// ports > 0 routes TCP sends through k per-destination link drivers;
// sparse opens the session over the route-planned link set
// (stpbcast.RoutesFor) instead of the full O(p²) mesh.
func runSession(engine string, n, flush, pipeline, ports int, sparse bool) error {
	if n <= 0 {
		return fmt.Errorf("-repeat must be positive, got %d", n)
	}
	if ports > 0 && flush > 0 {
		return fmt.Errorf("-flush and -ports are mutually exclusive")
	}
	engines := []stpbcast.Engine{stpbcast.EngineLive, stpbcast.EngineTCP}
	switch engine {
	case "both":
	case "sim":
		engines = []stpbcast.Engine{stpbcast.EngineSim}
	case "live":
		engines = []stpbcast.Engine{stpbcast.EngineLive}
	case "tcp":
		engines = []stpbcast.Engine{stpbcast.EngineTCP}
	default:
		return fmt.Errorf("unknown engine %q (want sim, live, tcp or both)", engine)
	}
	m := stpbcast.NewParagon(4, 4)
	cfg := stpbcast.Config{Algorithm: "Br_Lin", Distribution: "E", Sources: 4, MsgBytes: 1024}
	opts := stpbcast.RunOptions{RecvTimeout: 30 * time.Second, FlushThreshold: flush, Ports: ports}
	var links [][2]int
	if sparse {
		var err error
		if links, err = stpbcast.RoutesFor(m, cfg); err != nil {
			return fmt.Errorf("route extraction: %w", err)
		}
	}
	fmt.Printf("session demo: %d × %d B Br_Lin broadcasts, 4×4 mesh, E s=%d", n, cfg.MsgBytes, cfg.Sources)
	if flush > 0 {
		fmt.Printf(", flush %d B", flush)
	}
	if pipeline > 0 {
		fmt.Printf(", %d in flight", pipeline)
	}
	if ports > 0 {
		fmt.Printf(", %d ports", ports)
	}
	if sparse {
		fmt.Printf(", sparse mesh (%d planned links)", len(links))
	}
	fmt.Println()
	for _, eng := range engines {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := stpbcast.Run(m, eng, cfg, opts); err != nil {
				return fmt.Errorf("%s one-shot run %d: %w", eng, i, err)
			}
		}
		oneShot := time.Since(start)

		start = time.Now()
		s, err := stpbcast.Open(m, eng, stpbcast.SessionOptions{Links: links})
		if err != nil {
			return fmt.Errorf("%s open: %w", eng, err)
		}
		if err := sessionLoop(s, cfg, opts, n, pipeline); err != nil {
			s.Close()
			return fmt.Errorf("%s session: %w", eng, err)
		}
		stats, err := s.Close()
		if err != nil {
			return fmt.Errorf("%s close: %w", eng, err)
		}
		warm := time.Since(start)

		osRate := float64(n) / oneShot.Seconds()
		wRate := float64(n) / warm.Seconds()
		fmt.Printf("%-5s one-shot %8.1f bcasts/s   session %8.1f bcasts/s   speedup %5.2fx   (runs %d, %d B sent, %d reconnects)\n",
			eng, osRate, wRate, wRate/osRate, stats.Runs, stats.Bytes, stats.Reconnects)
	}
	return nil
}

// sessionLoop drives n broadcasts through the warm session: plain Run
// when pipeline is 0, otherwise RunAsync with up to pipeline futures
// submitted ahead of the oldest unresolved one.
func sessionLoop(s *stpbcast.Session, cfg stpbcast.Config, opts stpbcast.RunOptions, n, pipeline int) error {
	if pipeline <= 0 {
		for i := 0; i < n; i++ {
			if _, err := s.Run(cfg, opts); err != nil {
				return fmt.Errorf("run %d: %w", i, err)
			}
		}
		return nil
	}
	inflight := make([]*stpbcast.Future, 0, pipeline)
	for i := 0; i < n; i++ {
		fut, err := s.RunAsync(cfg, opts)
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		inflight = append(inflight, fut)
		if len(inflight) == pipeline {
			if _, err := inflight[0].Wait(); err != nil {
				return fmt.Errorf("async run: %w", err)
			}
			inflight = append(inflight[:0], inflight[1:]...)
		}
	}
	for _, fut := range inflight {
		if _, err := fut.Wait(); err != nil {
			return fmt.Errorf("async run: %w", err)
		}
	}
	return nil
}

// chaosScenario is one fault plan plus the invariant it must satisfy:
// graceful plans complete with intact bundles, disruptive plans abort
// with a diagnostic containing wantErr — never a silent hang (the
// deadlines bound every wait) and never a wrong answer.
type chaosScenario struct {
	name    string
	plan    func(seed int64) stpbcast.FaultPlan
	wantErr string // "" = must complete gracefully
}

var chaosScenarios = []chaosScenario{
	{
		name: "dup+delay",
		plan: func(seed int64) stpbcast.FaultPlan {
			return stpbcast.FaultPlan{Seed: seed, Duplicate: 0.25, DelayProb: 0.25, MaxDelay: time.Millisecond}
		},
	},
	{
		name:    "drop-all",
		plan:    func(seed int64) stpbcast.FaultPlan { return stpbcast.FaultPlan{Seed: seed, Drop: 1} },
		wantErr: "deadline",
	},
	{
		name: "kill-rank",
		plan: func(seed int64) stpbcast.FaultPlan {
			return stpbcast.FaultPlan{Kills: []stpbcast.FaultKill{{Rank: 5, Op: 2}}}
		},
		wantErr: "rank 5 killed",
	},
}

// runChaos sweeps every broadcast algorithm across the fault scenarios
// on the requested real-byte engines, verifying that each injected
// fault either degrades gracefully (bundles identical to a fault-free
// run) or aborts cleanly with a diagnostic. It returns an error if any
// run violates that invariant.
func runChaos(seed int64, engine string) error {
	engines := []string{"live", "tcp"}
	switch engine {
	case "both":
	case "live", "tcp":
		engines = []string{engine}
	default:
		return fmt.Errorf("unknown engine %q (want live, tcp or both)", engine)
	}
	m := stpbcast.NewParagon(3, 4)
	payload := func(rank int) []byte { return []byte(fmt.Sprintf("chaos-%02d", rank)) }
	fmt.Printf("chaos sweep: seed %d, 3x4 mesh, 5 Cr sources\n", seed)
	fmt.Printf("%-22s %-5s %-10s %-8s %s\n", "algorithm", "eng", "scenario", "faults", "outcome")
	failures := 0
	for _, alg := range stpbcast.Algorithms() {
		cfg := stpbcast.Config{Algorithm: alg.Name(), Distribution: "Cr", Sources: 5, MsgBytes: 0}
		for _, eng := range engines {
			for _, sc := range chaosScenarios {
				plan := sc.plan(seed)
				opts := stpbcast.RunOptions{
					RecvTimeout: 2 * time.Second,
					RunTimeout:  60 * time.Second,
					Faults:      &plan,
				}
				var res *stpbcast.LiveResult
				var err error
				if eng == "live" {
					res, err = stpbcast.RunLiveOpts(m, cfg, payload, opts)
				} else {
					res, err = stpbcast.RunTCPOpts(m, cfg, payload, opts)
				}
				outcome, bad := chaosOutcome(sc, res, err)
				nfaults := "-"
				if res != nil {
					nfaults = fmt.Sprintf("%d", len(res.Faults))
				}
				fmt.Printf("%-22s %-5s %-10s %-8s %s\n", alg.Name(), eng, sc.name, nfaults, outcome)
				if bad {
					failures++
				}
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d chaos run(s) violated the degrade-or-abort invariant", failures)
	}
	fmt.Println("all chaos runs degraded gracefully or aborted with a diagnostic")
	return nil
}

// chaosOutcome classifies one chaos run against its scenario's
// invariant and reports whether it violated it.
func chaosOutcome(sc chaosScenario, res *stpbcast.LiveResult, err error) (string, bool) {
	if sc.wantErr == "" {
		if err != nil {
			return fmt.Sprintf("FAIL: graceful plan aborted: %v", err), true
		}
		for rank, got := range res.Bundles {
			if len(got) != 5 {
				return fmt.Sprintf("FAIL: rank %d holds %d/5 messages", rank, len(got)), true
			}
			for origin, data := range got {
				if want := fmt.Sprintf("chaos-%02d", origin); string(data) != want {
					return fmt.Sprintf("FAIL: rank %d origin %d corrupted payload %q", rank, origin, data), true
				}
			}
		}
		return "ok (bundles intact)", false
	}
	if err == nil {
		// A disruptive plan that injected nothing (e.g. the killed rank
		// finished before reaching its operation index) leaves the run
		// healthy — inert, not a violation.
		if res != nil && len(res.Faults) == 0 {
			return "ok (plan inert for this algorithm)", false
		}
		return fmt.Sprintf("FAIL: expected abort mentioning %q, run completed", sc.wantErr), true
	}
	if !strings.Contains(err.Error(), sc.wantErr) {
		return fmt.Sprintf("FAIL: abort lost diagnostic %q: %v", sc.wantErr, err), true
	}
	return "ok (clean abort: " + firstLine(err.Error()) + ")", false
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// runDaemonLoad hammers a running stpbcastd with the configured
// workload — a closed-loop concurrency sweep by default, a fixed-rate
// open loop with -rate — and reports req/s plus p50/p95/p99 latency per
// level. With -out, the reports are also written as JSON
// (BENCH_daemon.json in the reference runs).
func runDaemonLoad(addr, engine, concList string, requests int, rate float64, duration time.Duration,
	rows, cols int, collective, alg, dist string, sources, msgBytes int, tenant, out string) error {
	if engine == "" {
		engine = "tcp"
	}
	base := addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	coll, err := stpbcast.ParseCollective(collective)
	if err != nil {
		return err
	}
	req := daemon.BroadcastRequest{
		Engine:     engine,
		Topology:   "paragon",
		Rows:       rows,
		Cols:       cols,
		Collective: collective,
		Algorithm:  alg,
		MsgBytes:   msgBytes,
		Tenant:     tenant,
	}
	srcDesc := "all-ranks"
	if coll.Caps().TakesSources {
		if coll.Caps().SingleSource {
			sources = 1
		}
		req.Distribution = dist
		req.Sources = sources
		srcDesc = fmt.Sprintf("%s s=%d", dist, sources)
	}
	fmt.Printf("load generator: %s %s %dx%d %s/%s %s %d B → %s\n",
		engine, req.Topology, rows, cols, coll, alg, srcDesc, msgBytes, base)

	var reports []*daemon.LoadReport
	if rate > 0 {
		r, err := daemon.RunLoad(daemon.LoadSpec{
			BaseURL: base, Request: req, Rate: rate, Duration: duration,
		})
		if err != nil {
			return err
		}
		fmt.Println(r)
		reports = append(reports, r)
	} else {
		levels, err := parseConcSweep(concList)
		if err != nil {
			return err
		}
		for _, conc := range levels {
			r, err := daemon.RunLoad(daemon.LoadSpec{
				BaseURL: base, Request: req, Concurrency: conc, Requests: requests,
			})
			if err != nil {
				return err
			}
			fmt.Println(r)
			reports = append(reports, r)
		}
	}
	if out != "" {
		doc := struct {
			Workload daemon.BroadcastRequest `json:"workload"`
			Reports  []*daemon.LoadReport    `json:"reports"`
		}{Workload: req, Reports: reports}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d report(s))\n", out, len(reports))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stpbench:", err)
	os.Exit(1)
}
