// Command stpworker runs a multi-process broadcast cluster on the TCP
// engine: one coordinator process and N worker processes, each owning a
// contiguous rank range of the mesh, with the planned link set split so
// intra-worker pairs stay in-process and inter-worker pairs cross the
// wire.
//
// Coordinator mode (the default) spawns its workers by re-executing
// its own binary:
//
//	stpworker -workers 4 -rows 8 -cols 8 -alg Br_Lin -dist E -s 4 -bytes 1024 -sparse
//	stpworker -workers 4 -rows 16 -cols 16 -sparse -runs 5 -fail-on-lazy
//
// Worker mode serves one externally started coordinator and exits when
// the cluster session closes:
//
//	stpworker -coord 127.0.0.1:7500
//
// Adoption stitches the two together across terminals (or hosts, with
// -host set to an externally visible address):
//
//	stpworker -workers 2 -adopt -listen 127.0.0.1:7500 ...   # terminal 1
//	stpworker -coord 127.0.0.1:7500                          # terminals 2, 3
//
// -fail-on-lazy turns the zero-lazy-dials invariant into the exit
// status: if any send of the run crossed a link the route plan missed,
// the coordinator exits 1. CI's cluster smoke test runs exactly this.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/plan"
	"repro/internal/topology"
)

func main() {
	// A coordinator may have re-executed this binary as a worker; route
	// such copies into worker mode before flag parsing.
	cluster.MaybeWorker()

	coord := flag.String("coord", "", "worker mode: serve the coordinator at this control address")
	workers := flag.Int("workers", 4, "worker process count")
	adopt := flag.Bool("adopt", false, "adopt externally started workers instead of spawning")
	listen := flag.String("listen", "", "control listener address (required with -adopt; default ephemeral)")
	host := flag.String("host", "", "host the workers' mesh listeners bind to (default loopback)")
	rows := flag.Int("rows", 8, "mesh rows")
	cols := flag.Int("cols", 8, "mesh cols")
	alg := flag.String("alg", "Br_Lin", "broadcast algorithm (paper name)")
	distName := flag.String("dist", "E", "source distribution (paper name)")
	sources := flag.Int("s", 4, "source processor count")
	msgBytes := flag.Int("bytes", 1024, "per-source message bytes")
	sparse := flag.Bool("sparse", false, "partition the traced sparse route plan instead of the full mesh")
	runs := flag.Int("runs", 3, "broadcast repetitions over the warm cluster")
	timeout := flag.Duration("timeout", time.Minute, "per-receive timeout")
	failOnLazy := flag.Bool("fail-on-lazy", false, "exit 1 if any send needed a lazy dial outside the route plan")
	flag.Parse()

	if *coord != "" {
		if err := cluster.ServeWorker(*coord); err != nil {
			fatal(err)
		}
		return
	}
	if err := run(*workers, *adopt, *listen, *host, *rows, *cols, *alg, *distName,
		*sources, *msgBytes, *sparse, *runs, *timeout, *failOnLazy); err != nil {
		fatal(err)
	}
}

func run(workers int, adopt bool, listen, host string, rows, cols int, algName, distName string,
	sources, msgBytes int, sparse bool, runs int, timeout time.Duration, failOnLazy bool) error {
	m := machine.Paragon(rows, cols)
	d, err := dist.ByName(distName)
	if err != nil {
		return err
	}
	srcs, err := d.Sources(rows, cols, sources)
	if err != nil {
		return err
	}
	alg, err := core.ByName(algName)
	if err != nil {
		return err
	}
	spec := core.Spec{Rows: rows, Cols: cols, Sources: srcs, Indexing: topology.SnakeRowMajor}
	if err := spec.Validate(rows * cols); err != nil {
		return err
	}

	var links [][2]int // nil: full mesh
	if sparse {
		if links, err = plan.Routes(m, alg, spec, msgBytes); err != nil {
			return err
		}
	}

	cs := cluster.Spec{
		Workers: workers, P: rows * cols, Links: links,
		Adopt: adopt, ControlAddr: listen, ListenHost: host,
	}
	if adopt {
		if listen == "" {
			return fmt.Errorf("stpworker: -adopt needs -listen so the workers know where to dial")
		}
		cs.OnListen = func(addr string) {
			fmt.Printf("coordinator listening on %s; start %d x  stpworker -coord %s\n", addr, workers, addr)
		}
	}
	setupStart := time.Now()
	c, err := cluster.Start(cs)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("cluster up in %v: p=%d across %d workers (pids %v), %d inter-worker links\n",
		time.Since(setupStart).Round(time.Millisecond), rows*cols, workers, c.WorkerPIDs(), c.InterLinks())
	for i, rg := range c.Ranges() {
		fmt.Printf("  worker %d: ranks [%d,%d)\n", i, rg[0], rg[1])
	}

	rs := cluster.RunSpec{
		Rows: rows, Cols: cols, Sources: srcs, Algorithm: alg.Name(),
		MsgBytes: msgBytes, RecvTimeoutNs: int64(timeout),
	}
	var res *cluster.Result
	for i := 0; i < runs; i++ {
		if res, err = c.Run(rs); err != nil {
			return fmt.Errorf("run %d: %w", i, err)
		}
		fmt.Printf("run %d: %s %s s=%d L=%dB  elapsed %v\n",
			i, alg.Name(), distName, len(srcs), msgBytes, res.Elapsed.Round(10*time.Microsecond))
	}
	mesh := "full"
	if sparse {
		mesh = fmt.Sprintf("sparse (%d planned links)", len(links))
	}
	fmt.Printf("mesh %s: %d planned pairs (wire pairs count at both endpoints), %d conns opened, %d lazy dials, %d coordinator resets\n",
		mesh, res.PlannedPairs, res.ConnsOpened, res.LazyDials, c.Resets())
	if failOnLazy && res.LazyDials != 0 {
		return fmt.Errorf("stpworker: %d sends crossed links outside the route plan (want 0 lazy dials)", res.LazyDials)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stpworker:", err)
	os.Exit(1)
}
